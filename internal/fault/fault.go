// Package fault defines the deterministic fault-injection layer of the
// simulated cluster: a declarative Plan of what goes wrong (per-node clock
// slowdown, transient node stalls, control-message delay and loss on the
// DPCL daemon path, rank crashes at virtual times, trace-buffer pressure)
// and an Injector that turns the plan into seed-driven decisions and a
// structured event log at run time.
//
// The package holds only data and decision logic; the machine, proc, mpi,
// dpcl and vt layers consult it at their own fault points. A zero Plan is
// free: no Injector is created, no RNG values are drawn, and every layer
// follows exactly the fault-free code path, so fault support never
// perturbs fault-free runs.
package fault

import (
	"fmt"
	"sort"
	"strings"

	"dynprof/internal/des"
)

// OverflowPolicy selects how the instrumentation library degrades when a
// per-thread trace buffer fills mid-run — the mitigation space the paper
// motivates (trace data grows at megabytes per second per processor and
// overwhelms collection long before a 1000+ CPU run completes).
type OverflowPolicy int

const (
	// OverflowFlushEarly drains the full buffer to the collector mid-run,
	// charging the writing thread for the I/O (the postmortem model's
	// fallback).
	OverflowFlushEarly OverflowPolicy = iota
	// OverflowDropOldest discards the oldest buffered event to admit the
	// new one, keeping a bounded sliding window of the most recent events.
	OverflowDropOldest
	// OverflowDisableProbe deactivates the recording symbol that overflowed
	// the buffer — the paper's own mitigation: dynamically switch off
	// instrumentation that produces too much data.
	OverflowDisableProbe
)

// String names the policy for keys and logs.
func (o OverflowPolicy) String() string {
	switch o {
	case OverflowFlushEarly:
		return "flush-early"
	case OverflowDropOldest:
		return "drop-oldest"
	case OverflowDisableProbe:
		return "disable-probe"
	default:
		return fmt.Sprintf("overflow(%d)", int(o))
	}
}

// Slowdown scales one node's processor clock: every cycle on the node
// takes Factor times as long (thermal throttling, a failing DIMM being
// scrubbed, a co-scheduled daemon). Factor must be >= 1.
type Slowdown struct {
	Node   int
	Factor float64
}

// Stall freezes every CPU of one node for a window of virtual time
// (an OS hiccup, a paging storm). Threads computing on the node during
// [At, At+Duration] make no progress; communication already in flight is
// unaffected.
type Stall struct {
	Node     int
	At       des.Time
	Duration des.Time
}

// End reports the first instant after the stall.
func (st Stall) End() des.Time { return st.At + st.Duration }

// Crash kills one MPI rank at a virtual time: its process disappears and
// never re-enters communication. Surviving ranks must detect the death
// via timeout and degrade instead of hanging.
type Crash struct {
	Rank int
	At   des.Time
}

// DefaultDetectTimeout is how long survivors wait for a missing collective
// party before concluding it is dead, when the plan does not override it.
const DefaultDetectTimeout = 250 * des.Millisecond

// Plan declares every fault injected into one simulated run. The zero
// value is the fault-free ideal machine; IsZero reports it and every
// consumer bypasses the fault path entirely for it.
//
// Plans are immutable once attached to a machine configuration: they are
// shared across concurrently executing experiment cells.
type Plan struct {
	// Slowdowns scales named nodes' clocks (Factor >= 1).
	Slowdowns []Slowdown
	// Stalls freezes nodes for windows of virtual time.
	Stalls []Stall
	// Crashes kills MPI ranks at virtual times.
	Crashes []Crash
	// CtrlLossProb is the probability, per DPCL control message (request
	// or acknowledgement), that the message is silently lost. Lost
	// requests are retried by the client with exponential backoff.
	CtrlLossProb float64
	// CtrlDelayFactor scales daemon control-message latency (>= 1;
	// 0 means 1: no extra delay).
	CtrlDelayFactor float64
	// DetectTimeout overrides how long survivors wait before degrading a
	// collective around a dead rank (0 = DefaultDetectTimeout).
	DetectTimeout des.Time
	// TraceBufEvents bounds each thread's in-memory trace buffer to this
	// many events; Overflow picks the degradation policy when it fills.
	// 0 leaves buffers unbounded (the paper's postmortem model).
	TraceBufEvents int
	// Overflow is the trace-buffer mitigation policy.
	Overflow OverflowPolicy
}

// IsZero reports whether the plan injects nothing. A nil plan is zero.
func (pl *Plan) IsZero() bool {
	if pl == nil {
		return true
	}
	return len(pl.Slowdowns) == 0 && len(pl.Stalls) == 0 && len(pl.Crashes) == 0 &&
		pl.CtrlLossProb == 0 && pl.CtrlDelayFactor == 0 && pl.DetectTimeout == 0 &&
		pl.TraceBufEvents == 0
}

// Validate rejects plans that would corrupt virtual time or probability
// draws: slowdown factors below 1, stalls with negative windows, loss
// probabilities outside [0, 1].
func (pl *Plan) Validate() error {
	if pl == nil {
		return nil
	}
	for _, s := range pl.Slowdowns {
		if s.Factor < 1 {
			return fmt.Errorf("fault: slowdown factor %.3f on node %d would run time backwards (want >= 1)", s.Factor, s.Node)
		}
	}
	for _, st := range pl.Stalls {
		if st.At < 0 || st.Duration < 0 {
			return fmt.Errorf("fault: stall on node %d has negative window (at %v for %v)", st.Node, st.At, st.Duration)
		}
	}
	for _, c := range pl.Crashes {
		if c.Rank < 0 || c.At < 0 {
			return fmt.Errorf("fault: crash of rank %d at %v is not schedulable", c.Rank, c.At)
		}
	}
	if pl.CtrlLossProb < 0 || pl.CtrlLossProb > 1 {
		return fmt.Errorf("fault: control-message loss probability %.3f outside [0,1]", pl.CtrlLossProb)
	}
	if pl.CtrlDelayFactor < 0 {
		return fmt.Errorf("fault: control-message delay factor %.3f is negative", pl.CtrlDelayFactor)
	}
	if pl.DetectTimeout < 0 {
		return fmt.Errorf("fault: detect timeout %v is negative", pl.DetectTimeout)
	}
	if pl.TraceBufEvents < 0 {
		return fmt.Errorf("fault: trace buffer bound %d is negative", pl.TraceBufEvents)
	}
	return nil
}

// SlowdownOn reports the clock scale of a node: 1.0 when unaffected. When
// several slowdowns name the same node their factors compound.
func (pl *Plan) SlowdownOn(node int) float64 {
	f := 1.0
	if pl == nil {
		return f
	}
	for _, s := range pl.Slowdowns {
		if s.Node == node {
			f *= s.Factor
		}
	}
	return f
}

// StallsOn returns the node's stall windows sorted by start time.
func (pl *Plan) StallsOn(node int) []Stall {
	if pl == nil {
		return nil
	}
	var out []Stall
	for _, st := range pl.Stalls {
		if st.Node == node && st.Duration > 0 {
			out = append(out, st)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// DelayFactor resolves the effective control-delay scale (0 means 1).
func (pl *Plan) DelayFactor() float64 {
	if pl == nil || pl.CtrlDelayFactor == 0 {
		return 1
	}
	return pl.CtrlDelayFactor
}

// Timeout resolves the dead-rank detection timeout.
func (pl *Plan) Timeout() des.Time {
	if pl == nil || pl.DetectTimeout == 0 {
		return DefaultDetectTimeout
	}
	return pl.DetectTimeout
}

// Key canonicalises the plan for experiment memoization: two plans with
// equal keys inject identical fault schedules into a deterministic run.
// The zero plan's key is the empty string, so fault-free spec keys are
// byte-identical to what they were before the fault layer existed.
func (pl *Plan) Key() string {
	if pl.IsZero() {
		return ""
	}
	var b strings.Builder
	b.WriteString("faults{")
	slow := append([]Slowdown(nil), pl.Slowdowns...)
	sort.Slice(slow, func(i, j int) bool {
		if slow[i].Node != slow[j].Node {
			return slow[i].Node < slow[j].Node
		}
		return slow[i].Factor < slow[j].Factor
	})
	for _, s := range slow {
		fmt.Fprintf(&b, "slow:%d*%g;", s.Node, s.Factor)
	}
	stalls := append([]Stall(nil), pl.Stalls...)
	sort.Slice(stalls, func(i, j int) bool {
		if stalls[i].Node != stalls[j].Node {
			return stalls[i].Node < stalls[j].Node
		}
		return stalls[i].At < stalls[j].At
	})
	for _, st := range stalls {
		fmt.Fprintf(&b, "stall:%d@%d+%d;", st.Node, int64(st.At), int64(st.Duration))
	}
	crashes := append([]Crash(nil), pl.Crashes...)
	sort.Slice(crashes, func(i, j int) bool {
		if crashes[i].Rank != crashes[j].Rank {
			return crashes[i].Rank < crashes[j].Rank
		}
		return crashes[i].At < crashes[j].At
	})
	for _, c := range crashes {
		fmt.Fprintf(&b, "crash:%d@%d;", c.Rank, int64(c.At))
	}
	if pl.CtrlLossProb != 0 {
		fmt.Fprintf(&b, "loss:%g;", pl.CtrlLossProb)
	}
	if pl.CtrlDelayFactor != 0 {
		fmt.Fprintf(&b, "delay:%g;", pl.CtrlDelayFactor)
	}
	if pl.DetectTimeout != 0 {
		fmt.Fprintf(&b, "detect:%d;", int64(pl.DetectTimeout))
	}
	if pl.TraceBufEvents != 0 {
		fmt.Fprintf(&b, "buf:%d/%s;", pl.TraceBufEvents, pl.Overflow)
	}
	b.WriteString("}")
	return b.String()
}
