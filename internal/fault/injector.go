package fault

import (
	"fmt"
	"sort"

	"dynprof/internal/des"
)

// Kind classifies a structured fault event for the experiment JSONL
// stream. Values are stable strings, not iota, because they are part of
// the emitted wire format.
type Kind string

const (
	// KindSlowdown notes that a node's clock ran scaled for the whole run.
	KindSlowdown Kind = "node-slowdown"
	// KindStall notes a node freeze window that affected computation.
	KindStall Kind = "node-stall"
	// KindCrash notes a rank's process being killed.
	KindCrash Kind = "rank-crash"
	// KindCtrlDrop notes a lost DPCL control message.
	KindCtrlDrop Kind = "ctrl-drop"
	// KindCtrlRetry notes a client retransmission after an ack timeout.
	KindCtrlRetry Kind = "ctrl-retry"
	// KindCtrlTimeout notes a control transaction abandoned after the
	// retry budget was exhausted.
	KindCtrlTimeout Kind = "ctrl-timeout"
	// KindDegrade notes a collective completing without its dead ranks.
	KindDegrade Kind = "collective-degraded"
	// KindOverflow notes a trace buffer hitting its bound and the policy
	// that absorbed it.
	KindOverflow Kind = "trace-overflow"
	// KindDaemonCrash notes a communication daemon being killed.
	KindDaemonCrash Kind = "daemon-crash"
	// KindDaemonRestart notes a crashed daemon's respawn (new incarnation).
	KindDaemonRestart Kind = "daemon-restart"
	// KindLedgerReplay notes a client replaying its probe ledger against a
	// restarted daemon.
	KindLedgerReplay Kind = "ledger-replay"
	// KindCtrlStale notes a request fenced off by a daemon because it
	// carried a previous incarnation's number.
	KindCtrlStale Kind = "ctrl-stale"
	// KindLinkDrop notes a tool client's link to the session server going
	// down (the session suspends under its lease).
	KindLinkDrop Kind = "link-drop"
)

// Event is one observed fault occurrence, suitable for the -jsonl stream.
// Node and Rank are -1 when not applicable.
type Event struct {
	// At is the virtual time of the occurrence.
	At des.Time `json:"at_ns"`
	// Kind classifies the event.
	Kind Kind `json:"kind"`
	// Node is the affected node, -1 if not node-scoped.
	Node int `json:"node"`
	// Rank is the affected MPI rank, -1 if not rank-scoped.
	Rank int `json:"rank"`
	// Detail is a short human-readable elaboration.
	Detail string `json:"detail,omitempty"`
}

func (e Event) String() string {
	s := fmt.Sprintf("%.6fs %s", e.At.Seconds(), e.Kind)
	if e.Node >= 0 {
		s += fmt.Sprintf(" node=%d", e.Node)
	}
	if e.Rank >= 0 {
		s += fmt.Sprintf(" rank=%d", e.Rank)
	}
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}

// Injector makes the plan's probabilistic decisions and accumulates the
// event log for one subsystem of one run. A nil *Injector is the
// fault-free identity: every decision method returns the pass-through
// answer without drawing randomness, so call sites need no nil checks.
//
// Injectors are confined to their scheduler's goroutine protocol like
// every other DES structure — one run, one (or a few) injectors, no
// cross-run sharing.
type Injector struct {
	plan   *Plan
	rng    *des.RNG
	events []Event
}

// NewInjector builds an injector for a plan. It returns nil — the no-op
// injector — for a zero plan, and in that case does NOT consume the rng
// argument, so fault-free runs draw exactly the RNG stream they always
// did. Callers typically pass a fresh Fork() of their scheduler RNG,
// lazily: `if !plan.IsZero() { inj = fault.NewInjector(plan, s.RNG().Fork()) }`
// or rely on this constructor being handed an already-forked stream only
// on the faulted path.
func NewInjector(plan *Plan, rng *des.RNG) *Injector {
	if plan.IsZero() {
		return nil
	}
	return &Injector{plan: plan, rng: rng}
}

// Plan exposes the plan (nil-safe; nil injector reports the zero plan).
func (in *Injector) Plan() *Plan {
	if in == nil {
		return nil
	}
	return in.plan
}

// DropCtrl decides whether one control message is lost. The nil injector
// never drops and never draws.
func (in *Injector) DropCtrl() bool {
	if in == nil || in.plan.CtrlLossProb == 0 {
		return false
	}
	if in.plan.CtrlLossProb >= 1 {
		return true
	}
	return in.rng.Float64() < in.plan.CtrlLossProb
}

// CtrlLostAt reports whether a control message sent at the given instant
// falls inside a planned control outage. Deterministic — no RNG draw —
// and false on the nil injector.
func (in *Injector) CtrlLostAt(now des.Time) bool {
	if in == nil {
		return false
	}
	for _, o := range in.plan.CtrlOutages {
		if now >= o.At && now < o.End() && o.Duration > 0 {
			return true
		}
	}
	return false
}

// ScaleCtrl stretches a control-message latency by the plan's delay
// factor. The nil injector is the identity.
func (in *Injector) ScaleCtrl(d des.Time) des.Time {
	if in == nil {
		return d
	}
	f := in.plan.DelayFactor()
	if f == 1 {
		return d
	}
	return des.Time(float64(d) * f)
}

// Record appends a structured event to the log. No-op on nil.
func (in *Injector) Record(at des.Time, kind Kind, node, rank int, detail string) {
	if in == nil {
		return
	}
	in.events = append(in.events, Event{At: at, Kind: kind, Node: node, Rank: rank, Detail: detail})
}

// Events returns the accumulated log, sorted by time (stable within one
// instant, preserving emission order). Nil-safe.
func (in *Injector) Events() []Event {
	if in == nil {
		return nil
	}
	out := append([]Event(nil), in.events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// MergeEvents combines several event logs into one time-sorted stream —
// e.g. the guide job's injector and the dpcl system's injector for a
// Dynamic-policy run.
func MergeEvents(logs ...[]Event) []Event {
	var out []Event
	for _, l := range logs {
		out = append(out, l...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}
