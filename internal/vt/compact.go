package vt

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"sync"

	"dynprof/internal/des"
)

// This file implements the collector's online redundancy-suppression layer
// and the compact binary trace encoding (format version 2). HPC kernel
// traces are dominated by repeated calling-context/loop sequences (Arafa et
// al., "Redundancy Suppression In Time-Aware Dynamic Binary
// Instrumentation"): a loop body that enters and exits the same functions
// with the same per-iteration time deltas compresses to one parameterized
// repeat record instead of N verbatim events, with exact reconstruction on
// decode.
//
// A compact collector (NewCompactCollector) stores encoded blocks instead
// of verbatim events. One block encodes one Append batch (or one sealed
// per-thread unit, see ctx.go):
//
//	block   := op*                      (the event count travels out of band:
//	                                     blockRef in memory, frame on disk)
//	op      := literal | repeat
//	literal := tag [kind] id dAt [dRank dTid] [A B]
//	repeat  := 0x80|patternLen  uvarint(copies)
//
// The literal tag byte has bit 7 clear; bits 0-3 hold the kind (15 = escape,
// a uvarint kind follows), bit 4 marks a non-zero A/B payload (two zigzag
// varints), bit 5 a lane change (zigzag varint rank and tid deltas), and
// bit 6 a first-seen function id (a zigzag varint raw id follows and is
// appended to the block's id dictionary; otherwise a uvarint dictionary
// index). dAt is the zigzag varint time delta against the previous event in
// the block (the first event's delta is its absolute time).
//
// A repeat op says: the previous patternLen decoded events — tuples AND
// time deltas — occur `copies` more times. The encoder only emits it when
// the match is exact elementwise, so decoding reproduces the verbatim
// stream bit for bit: count, period (the sum of the pattern's deltas) and
// per-iteration deltas are all implied by the pattern.

// Compact-format constants.
const (
	// CompactVersion is the format-version byte of compact blocks, spill
	// files and binary trace files written by this package.
	CompactVersion = 2

	// maxPattern bounds the repeat detector's pattern length (loop bodies;
	// must stay below 128 so the length fits the repeat tag byte).
	maxPattern = 64

	// maxDirectID bounds the ids tracked by the encoder's direct-index
	// dictionary map; larger (or negative) ids are legal but re-encoded
	// raw on every occurrence.
	maxDirectID = 1 << 16

	// encodeChunkEvents sizes the blocks WriteCompact carves a verbatim
	// collector's arena into.
	encodeChunkEvents = 4096
)

// Literal tag bits.
const (
	tagKindMask byte = 0x0f
	tagKindEsc  byte = 0x0f
	tagAB       byte = 1 << 4
	tagLane     byte = 1 << 5
	tagNewID    byte = 1 << 6
	tagRepeat   byte = 1 << 7
)

// FormatError reports an encoded artifact — spill file, binary trace file
// or compact block — whose magic, version or structure cannot be
// interpreted. Readers return it instead of silently misparsing records
// written by a different format revision.
type FormatError struct {
	// What names the artifact: "spill file", "compact trace", "compact block".
	What string
	// Version is the unrecognised format version, or -1 for a structural
	// (corruption) failure.
	Version int
	// Detail describes a structural failure.
	Detail string
}

func (e *FormatError) Error() string {
	if e.Version >= 0 {
		return fmt.Sprintf("vt: %s: unsupported format version %d (want %d)", e.What, e.Version, CompactVersion)
	}
	return fmt.Sprintf("vt: %s: %s", e.What, e.Detail)
}

// CompactStats summarises a compact collector's suppression: how many
// events went in, how many encoded records (literal plus repeat ops) came
// out, and the encoded byte volume against the verbatim baseline.
type CompactStats struct {
	// EventsIn is the number of events appended to the collector.
	EventsIn int
	// Records is the number of encoded ops holding them.
	Records int
	// Repeats is the number of parameterized repeat records among Records.
	Repeats int
	// Bytes is the encoded payload volume, resident and spilled.
	Bytes int
}

// VerbatimBytes is the volume the same events occupy at the fixed
// per-event record size.
func (st CompactStats) VerbatimBytes() int { return st.EventsIn * EventBytes }

// Saved is the byte volume suppression removed.
func (st CompactStats) Saved() int { return st.VerbatimBytes() - st.Bytes }

// Ratio is the compression factor (verbatim/compact; 0 when empty).
func (st CompactStats) Ratio() float64 {
	if st.Bytes == 0 {
		return 0
	}
	return float64(st.VerbatimBytes()) / float64(st.Bytes)
}

// blockRef locates one encoded block in the collector's byte arena.
type blockRef struct {
	off, end int // carena[off:end]
	count    int // events encoded in the block
}

// Pools recycling compact-mode state across simulation cells, alongside
// eventBufPool: Release returns the byte arena, the encoder (dictionary
// map included) and the decoder scratch so sweeps stay zero-growth.
var (
	byteArenaPool = sync.Pool{New: func() any { return new([]byte) }}
	encoderPool   = sync.Pool{New: func() any { return new(encoder) }}
	decoderPool   = sync.Pool{New: func() any { return new(decoder) }}
)

// NewCompactCollector returns a collector with online redundancy
// suppression enabled: Append encodes every batch into the compact block
// format, Bytes reports the encoded volume, and SpillTo writes version-2
// frames. The merged Events view, WriteTrace and the analysis paths are
// byte-identical to a verbatim collector fed the same batches; only the
// storage representation differs. Suppression is opt-in per collector —
// NewCollector keeps the verbatim arena.
func NewCompactCollector() *Collector {
	col := NewCollector()
	col.compact = true
	col.carena = (*byteArenaPool.Get().(*[]byte))[:0]
	col.enc = encoderPool.Get().(*encoder)
	col.enc.reset()
	return col
}

// Compact reports whether the collector suppresses redundancy (encoded
// blocks) rather than storing events verbatim.
func (col *Collector) Compact() bool { return col.compact }

// CompactStats returns the collector's suppression counters (zero for a
// verbatim collector).
func (col *Collector) CompactStats() CompactStats { return col.stats }

// encodeBlockTo encodes evs as one compact block appended to dst, using
// the collector's pooled encoder. Callers own the returned buffer; the
// block is NOT added to the collector (see ctx.go's sealed units).
func (col *Collector) encodeBlockTo(dst []byte, evs []Event) (out []byte, recs, reps int) {
	return col.enc.encodeBlock(dst, evs)
}

// appendCompact is Append for a compact collector: carve the batch into
// non-decreasing-time segments exactly as the verbatim path does (segment
// indices are event positions, so the merge semantics are unchanged), then
// store the encoded block. A pre-encoded frame (adopted from a trace file
// or a sealed per-thread unit) is copied verbatim instead of re-encoded;
// recs/reps then carry the frame's op counts.
func (col *Collector) appendCompact(events []Event, frame []byte, recs, reps int) {
	base := col.count
	for i := 0; i < len(events); {
		j := i + 1
		for j < len(events) && events[j].At >= events[j-1].At {
			j++
		}
		if n := len(col.segs); n > 0 && i == 0 && base > 0 && events[0].At >= col.lastAt {
			col.segs[n-1].end = base + j
		} else {
			col.segs = append(col.segs, segRange{start: base + i, end: base + j})
		}
		i = j
	}
	off := len(col.carena)
	if frame != nil {
		col.carena = append(col.carena, frame...)
	} else {
		col.carena, recs, reps = col.enc.encodeBlock(col.carena, events)
	}
	col.blocks = append(col.blocks, blockRef{off: off, end: len(col.carena), count: len(events)})
	col.count += len(events)
	col.lastAt = events[len(events)-1].At
	col.stats.EventsIn += len(events)
	col.stats.Records += recs
	col.stats.Repeats += reps
	col.stats.Bytes += len(col.carena) - off
	if col.spill != nil {
		col.spill.maybeSpill(col)
	}
}

// adoptSealed appends a pre-encoded single-thread unit: its events are
// consecutive records of one thread, so times are non-decreasing and the
// whole unit is one segment — only the boundary times are needed to carve
// it. This is the mid-run flush path for byte-budgeted buffers (ctx.go).
func (col *Collector) adoptSealed(frame []byte, count int, firstAt, lastAt des.Time, recs, reps int) {
	if count == 0 {
		return
	}
	base := col.count
	if n := len(col.segs); n > 0 && base > 0 && firstAt >= col.lastAt {
		col.segs[n-1].end = base + count
	} else {
		col.segs = append(col.segs, segRange{start: base, end: base + count})
	}
	off := len(col.carena)
	col.carena = append(col.carena, frame...)
	col.blocks = append(col.blocks, blockRef{off: off, end: len(col.carena), count: count})
	col.count += count
	col.lastAt = lastAt
	col.stats.EventsIn += count
	col.stats.Records += recs
	col.stats.Repeats += reps
	col.stats.Bytes += len(frame)
	if col.spill != nil {
		col.spill.maybeSpill(col)
	}
}

// decodedCombined reconstructs the full insertion-ordered event stream of
// a compact collector — spilled prefix plus resident blocks — into the
// pooled decode scratch, together with the matching segment list, for
// merge-on-read. On a spill read failure the sticky error is set and only
// the resident events are returned, like the verbatim path.
func (col *Collector) decodedCombined() ([]Event, []segRange) {
	spilled := 0
	if col.spill != nil {
		spilled = col.spill.count
	}
	if col.decoded == nil {
		col.decoded = (*eventBufPool.Get().(*[]Event))[:0]
	}
	buf := col.decoded[:0]
	if spilled > 0 {
		var err error
		buf, err = col.spill.decodeAll(buf)
		if err != nil {
			col.spill.err = err
			buf, spilled = buf[:0], 0
		}
	}
	dec := decoderPool.Get().(*decoder)
	for _, b := range col.blocks {
		var err error
		buf, _, _, err = dec.block(col.carena[b.off:b.end], b.count, buf)
		if err != nil {
			// Resident blocks were encoded by this collector: failing to
			// decode one is memory corruption or an encoder bug, not an
			// input error.
			panic(err)
		}
	}
	decoderPool.Put(dec)
	col.decoded = buf
	segs := make([]segRange, 0, len(col.segs)+8)
	if spilled > 0 {
		for _, seg := range col.spill.segs {
			segs = append(segs, segRange{start: seg.start, end: seg.end})
		}
	}
	for _, seg := range col.segs {
		segs = append(segs, segRange{start: spilled + seg.start, end: spilled + seg.end})
	}
	return buf, segs
}

// encoder turns event batches into compact blocks. The id dictionary is a
// direct-index map (ids are small dense ints) reset in O(ids assigned) per
// block; encoders are pooled across collectors via Release.
type encoder struct {
	idIdx    []int32 // id -> dictionary index + 1; 0 = unassigned
	assigned []int32 // ids assigned in the current block, for cheap reset
	dictN    int
}

// reset clears the per-block dictionary.
func (e *encoder) reset() {
	for _, id := range e.assigned {
		e.idIdx[id] = 0
	}
	e.assigned = e.assigned[:0]
	e.dictN = 0
}

// deltaAt is event i's time delta against its predecessor in the batch
// (the first event is relative to the block base, time zero).
func deltaAt(evs []Event, i int) des.Time {
	if i == 0 {
		return evs[0].At
	}
	return evs[i].At - evs[i-1].At
}

// evEq reports whether positions a and b carry the same tuple AND the same
// time delta — the exactness requirement that makes repeat records
// lossless.
func evEq(evs []Event, a, b int) bool {
	x, y := &evs[a], &evs[b]
	return x.Kind == y.Kind && x.ID == y.ID && x.Rank == y.Rank && x.TID == y.TID &&
		x.A == y.A && x.B == y.B && deltaAt(evs, a) == deltaAt(evs, b)
}

// matchRun is the length of the elementwise match of evs[i:] against
// evs[i-l:] — how far the stream keeps repeating with period l.
func matchRun(evs []Event, i, l int) int {
	k := 0
	for i+k < len(evs) && evEq(evs, i+k, i+k-l) {
		k++
	}
	return k
}

// encodeBlock appends one block encoding evs to dst, returning the grown
// buffer and the op counts (records total, repeat records among them).
func (e *encoder) encodeBlock(dst []byte, evs []Event) (out []byte, recs, reps int) {
	e.reset()
	var prevAt des.Time
	var prevRank, prevTid int32
	for i := 0; i < len(evs); {
		// Repeat detection: the smallest period with at least one full
		// extra copy wins (a period-P loop is caught at l == P; larger l
		// only splinters it).
		maxL := i
		if maxL > maxPattern {
			maxL = maxPattern
		}
		bestL, run := 0, 0
		for l := 1; l <= maxL; l++ {
			if !evEq(evs, i, i-l) {
				continue
			}
			if r := matchRun(evs, i, l); r >= l {
				bestL, run = l, r
				break
			}
		}
		if bestL > 0 {
			copies := run / bestL
			dst = append(dst, tagRepeat|byte(bestL))
			dst = binary.AppendUvarint(dst, uint64(copies))
			last := i + copies*bestL - 1
			prevAt = evs[last].At
			prevRank, prevTid = evs[last].Rank, evs[last].TID
			i += copies * bestL
			recs++
			reps++
			continue
		}

		ev := &evs[i]
		tag := byte(0)
		kindEsc := false
		if byte(ev.Kind) < tagKindEsc {
			tag |= byte(ev.Kind)
		} else {
			tag |= tagKindEsc
			kindEsc = true
		}
		hasAB := ev.A != 0 || ev.B != 0
		if hasAB {
			tag |= tagAB
		}
		lane := ev.Rank != prevRank || ev.TID != prevTid
		if lane {
			tag |= tagLane
		}
		newID := true
		var dictIdx uint64
		direct := ev.ID >= 0 && ev.ID < maxDirectID
		if direct {
			if int(ev.ID) >= len(e.idIdx) {
				grown := make([]int32, ev.ID+1)
				copy(grown, e.idIdx)
				e.idIdx = grown
			}
			if v := e.idIdx[ev.ID]; v != 0 {
				newID = false
				dictIdx = uint64(v - 1)
			}
		}
		if newID {
			tag |= tagNewID
		}
		dst = append(dst, tag)
		if kindEsc {
			dst = binary.AppendUvarint(dst, uint64(ev.Kind))
		}
		if newID {
			dst = binary.AppendVarint(dst, int64(ev.ID))
			if direct {
				e.idIdx[ev.ID] = int32(e.dictN) + 1
				e.assigned = append(e.assigned, ev.ID)
			}
			// Out-of-range ids still occupy a dictionary slot: the decoder
			// appends unconditionally, and indices must agree.
			e.dictN++
		} else {
			dst = binary.AppendUvarint(dst, dictIdx)
		}
		dst = binary.AppendVarint(dst, int64(ev.At-prevAt))
		if lane {
			dst = binary.AppendVarint(dst, int64(ev.Rank-prevRank))
			dst = binary.AppendVarint(dst, int64(ev.TID-prevTid))
			prevRank, prevTid = ev.Rank, ev.TID
		}
		if hasAB {
			dst = binary.AppendVarint(dst, ev.A)
			dst = binary.AppendVarint(dst, ev.B)
		}
		prevAt = ev.At
		recs++
		i++
	}
	return dst, recs, reps
}

// decoder reconstructs blocks; the dictionary scratch is pooled.
type decoder struct {
	dict []int32
}

// block decodes one compact block of `count` events from src, appending the
// reconstructed events to dst. The decoded suffix of dst doubles as the
// pattern history for repeat ops.
func (d *decoder) block(src []byte, count int, dst []Event) (out []Event, recs, reps int, err error) {
	corrupt := func(detail string) ([]Event, int, int, error) {
		return dst, recs, reps, &FormatError{What: "compact block", Version: -1, Detail: detail}
	}
	d.dict = d.dict[:0]
	blockStart := len(dst)
	var prevAt des.Time
	var prevRank, prevTid int32
	p := 0
	readU := func() (uint64, bool) {
		v, n := binary.Uvarint(src[p:])
		if n <= 0 {
			return 0, false
		}
		p += n
		return v, true
	}
	readS := func() (int64, bool) {
		v, n := binary.Varint(src[p:])
		if n <= 0 {
			return 0, false
		}
		p += n
		return v, true
	}
	for n := 0; n < count; {
		if p >= len(src) {
			return corrupt("truncated block")
		}
		tag := src[p]
		p++
		if tag&tagRepeat != 0 {
			l := int(tag &^ tagRepeat)
			copies, ok := readU()
			if !ok {
				return corrupt("truncated repeat record")
			}
			if l == 0 || copies == 0 || len(dst)-blockStart < l || n+int(copies)*l > count {
				return corrupt("repeat record out of range")
			}
			for c := uint64(0); c < copies; c++ {
				start := len(dst) - l
				for j := 0; j < l; j++ {
					ev := dst[start+j]
					var delta des.Time
					if start+j == blockStart {
						delta = ev.At
					} else {
						delta = ev.At - dst[start+j-1].At
					}
					ev.At = prevAt + delta
					prevAt = ev.At
					dst = append(dst, ev)
				}
			}
			last := &dst[len(dst)-1]
			prevRank, prevTid = last.Rank, last.TID
			n += int(copies) * l
			recs++
			reps++
			continue
		}
		var ev Event
		ev.Kind = Kind(tag & tagKindMask)
		if byte(ev.Kind) == tagKindEsc {
			raw, ok := readU()
			if !ok {
				return corrupt("truncated kind escape")
			}
			ev.Kind = Kind(raw)
		}
		if tag&tagNewID != 0 {
			raw, ok := readS()
			if !ok {
				return corrupt("truncated raw id")
			}
			ev.ID = int32(raw)
			d.dict = append(d.dict, ev.ID)
		} else {
			idx, ok := readU()
			if !ok {
				return corrupt("truncated dictionary index")
			}
			if idx >= uint64(len(d.dict)) {
				return corrupt("dictionary index out of range")
			}
			ev.ID = d.dict[idx]
		}
		dAt, ok := readS()
		if !ok {
			return corrupt("truncated time delta")
		}
		prevAt += des.Time(dAt)
		ev.At = prevAt
		if tag&tagLane != 0 {
			dRank, ok1 := readS()
			dTid, ok2 := readS()
			if !ok1 || !ok2 {
				return corrupt("truncated lane delta")
			}
			prevRank += int32(dRank)
			prevTid += int32(dTid)
		}
		ev.Rank, ev.TID = prevRank, prevTid
		if tag&tagAB != 0 {
			a, ok1 := readS()
			b, ok2 := readS()
			if !ok1 || !ok2 {
				return corrupt("truncated A/B payload")
			}
			ev.A, ev.B = a, b
		}
		dst = append(dst, ev)
		recs++
		n++
	}
	if p != len(src) {
		return corrupt("trailing bytes after final record")
	}
	return dst, recs, reps, nil
}

// Binary trace-file format (version 2): the compact counterpart of the
// textual "# vgvtrace 1" format, readable by ReadCompactTrace and sniffed
// by ReadTraceAuto.
//
//	"VGVC" version(1)
//	uvarint nRanks { svarint rank, uvarint nFuncs { svarint id, uvarint len, name } }
//	uvarint totalEvents
//	frame* where frame := uvarint count, uvarint blockLen, block
const traceMagic = "VGVC"

// WriteCompactTrace writes the trace in the compact binary format. A
// compact collector's blocks (resident and spilled) are copied without
// re-encoding; a verbatim collector's arena is encoded in insertion-order
// chunks. Reading the file back reconstructs a collector whose merged
// Events view — and therefore every VGV rendering — is byte-identical to
// the source's.
func (col *Collector) WriteCompactTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(traceMagic)
	bw.WriteByte(CompactVersion)
	var scratch [binary.MaxVarintLen64]byte
	writeU := func(v uint64) { bw.Write(scratch[:binary.PutUvarint(scratch[:], v)]) }
	writeS := func(v int64) { bw.Write(scratch[:binary.PutVarint(scratch[:], v)]) }

	ranks := col.Ranks()
	writeU(uint64(len(ranks)))
	for _, rank := range ranks {
		t := col.funcs[rank]
		ids := make([]int32, 0, len(t))
		for id := range t {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		writeS(int64(rank))
		writeU(uint64(len(ids)))
		for _, id := range ids {
			writeS(int64(id))
			writeU(uint64(len(t[id])))
			bw.WriteString(t[id])
		}
	}

	writeU(uint64(col.Len()))
	if col.compact {
		// The spill file already holds framed blocks: stream its payload.
		if col.spill != nil && col.spill.count > 0 {
			if err := col.spill.copyFrames(bw); err != nil {
				return err
			}
		}
		for _, b := range col.blocks {
			writeU(uint64(b.count))
			writeU(uint64(b.end - b.off))
			bw.Write(col.carena[b.off:b.end])
		}
		return bw.Flush()
	}
	// Verbatim source: encode the insertion-ordered stream in chunks.
	store := col.store
	if col.spill != nil && col.spill.count > 0 {
		store, _ = col.spill.combined(col)
		if err := col.spill.err; err != nil {
			return err
		}
	}
	enc := encoderPool.Get().(*encoder)
	defer encoderPool.Put(enc)
	var frame []byte
	for off := 0; off < len(store); off += encodeChunkEvents {
		end := off + encodeChunkEvents
		if end > len(store) {
			end = len(store)
		}
		frame = frame[:0]
		frame, _, _ = enc.encodeBlock(frame, store[off:end])
		writeU(uint64(end - off))
		writeU(uint64(len(frame)))
		bw.Write(frame)
	}
	return bw.Flush()
}

// ReadCompactTrace parses a trace produced by WriteCompactTrace into a
// compact collector, adopting the file's blocks without re-encoding. An
// unrecognised magic or version is rejected with *FormatError.
func ReadCompactTrace(r io.Reader) (*Collector, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	var hdr [5]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, &FormatError{What: "compact trace", Version: -1, Detail: "truncated header"}
	}
	if string(hdr[:4]) != traceMagic {
		return nil, &FormatError{What: "compact trace", Version: -1, Detail: "bad magic"}
	}
	if hdr[4] != CompactVersion {
		return nil, &FormatError{What: "compact trace", Version: int(hdr[4])}
	}
	corrupt := func(detail string) (*Collector, error) {
		return nil, &FormatError{What: "compact trace", Version: -1, Detail: detail}
	}

	col := NewCompactCollector()
	nRanks, err := binary.ReadUvarint(br)
	if err != nil {
		return corrupt("truncated rank count")
	}
	for r := uint64(0); r < nRanks; r++ {
		rank, err := binary.ReadVarint(br)
		if err != nil {
			return corrupt("truncated rank id")
		}
		nFuncs, err := binary.ReadUvarint(br)
		if err != nil {
			return corrupt("truncated function count")
		}
		table := make(map[int32]string, nFuncs)
		for f := uint64(0); f < nFuncs; f++ {
			id, err := binary.ReadVarint(br)
			if err != nil {
				return corrupt("truncated function id")
			}
			nameLen, err := binary.ReadUvarint(br)
			if err != nil || nameLen > 1<<20 {
				return corrupt("bad function name length")
			}
			name := make([]byte, nameLen)
			if _, err := io.ReadFull(br, name); err != nil {
				return corrupt("truncated function name")
			}
			table[int32(id)] = string(name)
		}
		col.AddFuncTable(int32(rank), table)
	}

	total, err := binary.ReadUvarint(br)
	if err != nil {
		return corrupt("truncated event count")
	}
	dec := decoderPool.Get().(*decoder)
	defer decoderPool.Put(dec)
	var frame []byte
	var scratch []Event
	for decoded := uint64(0); decoded < total; {
		count, err := binary.ReadUvarint(br)
		if err != nil {
			return corrupt("truncated frame header")
		}
		blen, err := binary.ReadUvarint(br)
		if err != nil || count == 0 || decoded+count > total {
			return corrupt("bad frame header")
		}
		if uint64(cap(frame)) < blen {
			frame = make([]byte, blen)
		}
		frame = frame[:blen]
		if _, err := io.ReadFull(br, frame); err != nil {
			return corrupt("truncated frame")
		}
		scratch = scratch[:0]
		var recs, reps int
		scratch, recs, reps, err = dec.block(frame, int(count), scratch)
		if err != nil {
			return nil, err
		}
		col.appendCompact(scratch, frame, recs, reps)
		decoded += count
	}
	return col, nil
}

// ReadTraceAuto reads a trace in either supported format, sniffing the
// compact binary magic and falling back to the textual parser.
func ReadTraceAuto(r io.Reader) (*Collector, error) {
	br := bufio.NewReader(r)
	if peek, err := br.Peek(len(traceMagic)); err == nil && string(peek) == traceMagic {
		return ReadCompactTrace(br)
	}
	return ReadTrace(br)
}
