package vt

import (
	"fmt"
	"strings"

	"dynprof/internal/des"
	"dynprof/internal/fault"
	"dynprof/internal/image"
)

// Cost model for the instrumentation library, in processor cycles.
const (
	// lookupCycles is the cost of the deactivated-symbol table lookup
	// performed at every VT_begin/VT_end call. Disabled probes still pay
	// this plus the compiled-in call overhead — which is why Full-Off is
	// cheaper than Full but can never reach the uninstrumented time.
	lookupCycles = 85
	// recordCycles is the additional cost of timestamping and recording
	// an event when the symbol is active.
	recordCycles = 650
	// apiLogCycles is the cost of logging an MPI wrapper event.
	apiLogCycles = 300
	// initCycles models reading the configuration file and building the
	// deactivation table at VT initialisation.
	initCycles = 1_500_000
	// flushCyclesPerEvent prices writing one buffered event out when a
	// per-thread buffer overflows mid-run — the data-pressure cost behind
	// the paper's motivation that monitoring data grows at megabytes per
	// second per processor and overwhelms collection.
	flushCyclesPerEvent = 220
)

// Ctx is the per-process instance of the instrumentation library (one per
// MPI rank; one per OpenMP application). Methods are called from snippet
// and hook code running on the process's own threads.
type Ctx struct {
	rank      int32
	col       *Collector
	cfg       *Config
	traceMPI  bool
	traceOMP  bool
	countOnly bool
	flushAt   int
	midFlush  int
	ready     bool

	names  []string
	ids    map[string]int32
	active []bool
	calls  []int64 // per-function enter counts (runtime statistics)

	// Per-probe cost accounting, maintained alongside calls: hits counts
	// Begin/End firings regardless of activation (each pays at least the
	// table lookup), recorded counts the events actually collected, and
	// probeCycles accumulates every cycle the library charged through the
	// probe (lookup + record). An adaptive controller reads these through
	// CostSnapshot to attribute perturbation per function.
	hits        []int64
	recorded    []int64
	probeCycles []int64

	buffers map[int32][]Event
	bytes   int

	bufCap    int
	bufBytes  int
	units     map[int32]*threadUnits
	overflow  fault.OverflowPolicy
	inj       *fault.Injector
	node      int
	overflows int
	dropNoted map[int32]bool

	gen     int64
	pending []Change
}

// Options configures a library instance.
type Options struct {
	// Rank is the owning process's MPI rank (0 for OpenMP applications).
	Rank int
	// Config is the VT configuration file contents (nil: everything on).
	Config *Config
	// Collector receives flushed events; required.
	Collector *Collector
	// TraceMPI enables MPI wrapper event logging.
	TraceMPI bool
	// TraceOMP enables Guidetrace parallel-region event logging.
	TraceOMP bool
	// CountOnly keeps all cost and statistics accounting but drops event
	// payloads instead of buffering them — for large experiment sweeps
	// where the trace itself is not inspected.
	CountOnly bool
	// FlushThreshold bounds each thread's in-memory event buffer: when a
	// buffer reaches this many events it is written out mid-run, charging
	// the writing thread for the I/O. Zero keeps everything buffered
	// until Flush at termination (the paper's postmortem model).
	FlushThreshold int
	// BufferEvents models a fault-injected hard cap on each thread's
	// trace buffer: when a buffer holds this many events and another
	// arrives, the Overflow policy decides what gives. Zero means
	// unbounded (no overflow faults).
	BufferEvents int
	// BufferBytes models the same hard cap in bytes rather than events.
	// With a compact (redundancy-suppressing) collector the budget is
	// charged against sealed, encoded units, so suppression stretches the
	// same bytes over more events; with a verbatim collector it degrades
	// to an event cap of BufferBytes/EventBytes. Zero means unbounded.
	BufferBytes int
	// Overflow selects the policy applied when a capped buffer fills.
	Overflow fault.OverflowPolicy
	// Faults, when non-nil, receives a structured fault event each time
	// a buffer overflows.
	Faults *fault.Injector
	// Node is the node hosting the rank, for fault-event attribution.
	Node int
}

// NewCtx creates a library instance. The instance starts not-ready: probes
// must not record events until Initialize runs (inside MPI_Init / VT_init),
// mirroring the paper's constraint that instrumentation is unsafe before
// the library's own setup completes.
func NewCtx(opts Options) *Ctx {
	if opts.Collector == nil {
		panic("vt: NewCtx without a Collector")
	}
	var cfg *Config
	if opts.Config != nil {
		cfg = opts.Config.Clone()
	}
	bufCap, bufBytes := opts.BufferEvents, 0
	if opts.BufferBytes > 0 {
		if opts.Collector.Compact() {
			bufBytes = opts.BufferBytes
		} else if bufCap == 0 {
			// Verbatim collector: a byte budget is an event budget.
			bufCap = opts.BufferBytes / EventBytes
			if bufCap < 1 {
				bufCap = 1
			}
		}
	}
	return &Ctx{
		rank:      int32(opts.Rank),
		col:       opts.Collector,
		cfg:       cfg,
		traceMPI:  opts.TraceMPI,
		traceOMP:  opts.TraceOMP,
		countOnly: opts.CountOnly,
		flushAt:   opts.FlushThreshold,
		bufCap:    bufCap,
		bufBytes:  bufBytes,
		overflow:  opts.Overflow,
		inj:       opts.Faults,
		node:      opts.Node,
		ids:       make(map[string]int32),
		buffers:   make(map[int32][]Event),
	}
}

// Rank reports the owning rank.
func (c *Ctx) Rank() int { return int(c.rank) }

// Ready reports whether Initialize has run.
func (c *Ctx) Ready() bool { return c.ready }

// Generation reports the configuration generation (bumped by ConfSync).
func (c *Ctx) Generation() int64 { return c.gen }

// Initialize reads the configuration file, builds the deactivation table
// and opens the library for recording. ec charges the setup cost; a nil ec
// initialises without cost (tests).
func (c *Ctx) Initialize(ec image.ExecCtx) {
	if c.ready {
		return
	}
	if ec != nil {
		ec.Charge(initCycles)
	}
	c.ready = true
}

// FuncDef registers a function name and returns its id, assigning a fresh
// id on first registration (VT_funcdef: "this ID is automatically assigned
// by the VT library at the time that the subroutine is first registered").
func (c *Ctx) FuncDef(name string) int32 {
	if id, ok := c.ids[name]; ok {
		return id
	}
	id := int32(len(c.names))
	c.ids[name] = id
	c.names = append(c.names, name)
	c.active = append(c.active, c.cfg.Active(name))
	c.calls = append(c.calls, 0)
	c.hits = append(c.hits, 0)
	c.recorded = append(c.recorded, 0)
	c.probeCycles = append(c.probeCycles, 0)
	return id
}

// FuncName resolves an id to its registered name.
func (c *Ctx) FuncName(id int32) string {
	if id < 0 || int(id) >= len(c.names) {
		return fmt.Sprintf("func#%d", id)
	}
	return c.names[id]
}

// NumFuncs reports how many functions are registered.
func (c *Ctx) NumFuncs() int { return len(c.names) }

// Active reports whether function id is currently recorded.
func (c *Ctx) Active(id int32) bool { return c.active[id] }

// Calls reports the enter count accumulated for function id.
func (c *Ctx) Calls(id int32) int64 { return c.calls[id] }

// record appends an event to the calling thread's buffer.
func (c *Ctx) record(ec image.ExecCtx, k Kind, id int32, a, b int64) {
	c.bytes += EventBytes
	if c.countOnly {
		return
	}
	tid := int32(ec.ThreadID())
	if c.bufBytes > 0 {
		c.recordUnit(ec, tid, Event{
			At: ec.Now(), Rank: c.rank, TID: tid, Kind: k, ID: id, A: a, B: b,
		})
		return
	}
	if c.bufCap > 0 && len(c.buffers[tid]) >= c.bufCap && !c.overflowed(ec, tid, k, id) {
		return
	}
	c.buffers[tid] = append(c.buffers[tid], Event{
		At: ec.Now(), Rank: c.rank, TID: tid, Kind: k, ID: id, A: a, B: b,
	})
	if c.flushAt > 0 && len(c.buffers[tid]) >= c.flushAt {
		// Mid-run buffer flush: the thread pays for draining its own
		// buffer to the trace sink.
		ec.Charge(int64(len(c.buffers[tid])) * flushCyclesPerEvent)
		c.col.Append(c.buffers[tid])
		c.buffers[tid] = nil
		c.midFlush++
	}
}

// MidRunFlushes reports how many times a full buffer was drained before
// program termination.
func (c *Ctx) MidRunFlushes() int { return c.midFlush }

// sealChunkEvents is the unsealed tail length at which a byte-budgeted
// thread buffer compresses its tail into a sealed unit (see threadUnits).
const sealChunkEvents = 128

// encUnit is one sealed, compressed run of a thread's buffer: a compact
// block (format in compact.go) plus the metadata the collector needs to
// adopt it without decoding.
type encUnit struct {
	frame   []byte
	count   int
	firstAt des.Time
	lastAt  des.Time
	recs    int
	reps    int
}

// threadUnits is a thread's byte-budgeted trace buffer: an unsealed tail
// of raw events that is compressed into sealed units every
// sealChunkEvents, so the overflow budget (Options.BufferBytes) is charged
// in encoded bytes — redundancy suppression stretches the same budget over
// proportionally more events.
type threadUnits struct {
	sealed []encUnit
	bytes  int // total sealed frame bytes, charged against the budget
	raw    []Event
}

// events is the buffered event count, sealed and raw.
func (tu *threadUnits) events() int {
	n := len(tu.raw)
	for _, u := range tu.sealed {
		n += u.count
	}
	return n
}

// recordUnit is record for byte-budgeted buffers (BufferBytes with a
// compact collector): seal the tail when it is long enough to compress,
// apply the overflow policy against the encoded-byte budget, then buffer
// the event.
func (c *Ctx) recordUnit(ec image.ExecCtx, tid int32, ev Event) {
	tu := c.units[tid]
	if tu == nil {
		if c.units == nil {
			c.units = make(map[int32]*threadUnits)
		}
		tu = &threadUnits{}
		c.units[tid] = tu
	}
	if len(tu.raw) >= sealChunkEvents {
		c.seal(tu)
	}
	if tu.bytes >= c.bufBytes && !c.unitOverflow(ec, tu, tid, ev.Kind, ev.ID) {
		return
	}
	tu.raw = append(tu.raw, ev)
	if c.flushAt > 0 && tu.events() >= c.flushAt {
		// Mid-run buffer flush: the thread pays for draining its own
		// buffer to the trace sink.
		ec.Charge(int64(tu.events()) * flushCyclesPerEvent)
		c.drainUnits(tu)
		c.midFlush++
	}
}

// seal compresses the unsealed tail into a sealed unit using the
// collector's pooled encoder (the Ctx runs on its DES shard's single host
// thread, like every other collector access).
func (c *Ctx) seal(tu *threadUnits) {
	if len(tu.raw) == 0 {
		return
	}
	frame, recs, reps := c.col.encodeBlockTo(nil, tu.raw)
	tu.sealed = append(tu.sealed, encUnit{
		frame:   frame,
		count:   len(tu.raw),
		firstAt: tu.raw[0].At,
		lastAt:  tu.raw[len(tu.raw)-1].At,
		recs:    recs,
		reps:    reps,
	})
	tu.bytes += len(frame)
	tu.raw = tu.raw[:0]
}

// drainUnits moves the whole buffer — sealed units first, then the raw
// tail — to the collector. Sealed units are adopted without re-encoding.
func (c *Ctx) drainUnits(tu *threadUnits) {
	for i := range tu.sealed {
		u := &tu.sealed[i]
		c.col.adoptSealed(u.frame, u.count, u.firstAt, u.lastAt, u.recs, u.reps)
		u.frame = nil
	}
	tu.sealed = tu.sealed[:0]
	tu.bytes = 0
	if len(tu.raw) > 0 {
		c.col.Append(tu.raw)
		tu.raw = tu.raw[:0]
	}
}

// unitOverflow applies the configured overflow policy when thread tid's
// sealed bytes have reached the budget and event (k, id) wants in. It
// reports whether the arriving event should still be buffered.
func (c *Ctx) unitOverflow(ec image.ExecCtx, tu *threadUnits, tid int32, k Kind, id int32) bool {
	c.overflows++
	switch c.overflow {
	case fault.OverflowFlushEarly:
		n := tu.events()
		ec.Charge(int64(n) * flushCyclesPerEvent)
		c.drainUnits(tu)
		c.midFlush++
		c.faultEvent(ec, fmt.Sprintf("thread %d trace budget full (%d events compressed): flushed early", tid, n))
		return true
	case fault.OverflowDropOldest:
		dropped := 0
		for len(tu.sealed) > 0 && tu.bytes >= c.bufBytes {
			u := tu.sealed[0]
			tu.bytes -= len(u.frame)
			dropped += u.count
			copy(tu.sealed, tu.sealed[1:])
			tu.sealed[len(tu.sealed)-1] = encUnit{}
			tu.sealed = tu.sealed[:len(tu.sealed)-1]
		}
		if c.dropNoted == nil {
			c.dropNoted = make(map[int32]bool)
		}
		if !c.dropNoted[tid] {
			c.dropNoted[tid] = true
			c.faultEvent(ec, fmt.Sprintf("thread %d trace budget full: dropping oldest compressed units (%d events)", tid, dropped))
		}
		return true
	case fault.OverflowDisableProbe:
		if (k == Enter || k == Exit) && id >= 0 && int(id) < len(c.active) && c.active[id] {
			c.active[id] = false
			c.faultEvent(ec, fmt.Sprintf("thread %d trace budget full: disabled probe %s", tid, c.names[id]))
		}
		return false
	}
	return true
}

// overflowed applies the configured overflow policy when thread tid's
// buffer is full and the event (k, id) wants in. It reports whether the
// arriving event should still be appended.
func (c *Ctx) overflowed(ec image.ExecCtx, tid int32, k Kind, id int32) bool {
	c.overflows++
	switch c.overflow {
	case fault.OverflowFlushEarly:
		// Drain the full buffer to the collector, charging the thread
		// for the I/O, then let the new event start a fresh buffer.
		buf := c.buffers[tid]
		ec.Charge(int64(len(buf)) * flushCyclesPerEvent)
		c.col.Append(buf)
		c.buffers[tid] = nil
		c.midFlush++
		c.faultEvent(ec, fmt.Sprintf("thread %d buffer full (%d events): flushed early", tid, len(buf)))
		return true
	case fault.OverflowDropOldest:
		buf := c.buffers[tid]
		copy(buf, buf[1:])
		c.buffers[tid] = buf[:len(buf)-1]
		if c.dropNoted == nil {
			c.dropNoted = make(map[int32]bool)
		}
		if !c.dropNoted[tid] {
			c.dropNoted[tid] = true
			c.faultEvent(ec, fmt.Sprintf("thread %d buffer full (%d events): dropping oldest", tid, len(buf)+1))
		}
		return true
	case fault.OverflowDisableProbe:
		// Deactivate the offending probe so it stops producing data;
		// events that have no probe to disable (message and region
		// records) are discarded instead.
		if (k == Enter || k == Exit) && id >= 0 && int(id) < len(c.active) && c.active[id] {
			c.active[id] = false
			c.faultEvent(ec, fmt.Sprintf("thread %d buffer full: disabled probe %s", tid, c.names[id]))
		}
		return false
	}
	return true
}

// Overflows reports how many times a fault-capped buffer overflowed.
func (c *Ctx) Overflows() int { return c.overflows }

// faultEvent logs a trace-overflow fault on the injector, if any.
func (c *Ctx) faultEvent(ec image.ExecCtx, detail string) {
	if c.inj == nil {
		return
	}
	c.inj.Record(ec.Now(), fault.KindOverflow, c.node, int(c.rank), detail)
}

/// Begin is VT_begin: charge the table lookup; if the symbol is active,
// record a timestamped Enter event.
func (c *Ctx) Begin(ec image.ExecCtx, id int32) {
	if !c.ready {
		return
	}
	ec.Charge(lookupCycles)
	c.hits[id]++
	c.probeCycles[id] += lookupCycles
	if !c.active[id] {
		return
	}
	ec.Charge(recordCycles)
	c.probeCycles[id] += recordCycles
	c.recorded[id]++
	c.calls[id]++
	c.record(ec, Enter, id, 0, 0)
}

// End is VT_end.
func (c *Ctx) End(ec image.ExecCtx, id int32) {
	if !c.ready {
		return
	}
	ec.Charge(lookupCycles)
	c.hits[id]++
	c.probeCycles[id] += lookupCycles
	if !c.active[id] {
		return
	}
	ec.Charge(recordCycles)
	c.probeCycles[id] += recordCycles
	c.recorded[id]++
	c.record(ec, Exit, id, 0, 0)
}

// BeginSnippet returns an instrumentation snippet calling Begin for id —
// the payload dynprof places in mini-trampolines and the Guide compiler
// compiles into prologues.
func (c *Ctx) BeginSnippet(id int32) image.Snippet {
	return func(ec image.ExecCtx) { c.Begin(ec, id) }
}

// EndSnippet returns a snippet calling End for id.
func (c *Ctx) EndSnippet(id int32) image.Snippet {
	return func(ec image.ExecCtx) { c.End(ec, id) }
}

// TraceBytes reports the bytes of trace data this rank has produced.
func (c *Ctx) TraceBytes() int { return c.bytes }

// QueueChanges stages configuration updates on this rank to be distributed
// by the next ConfSync — the dynamic-control-of-instrumentation API the
// monitoring tool drives.
func (c *Ctx) QueueChanges(chs []Change) {
	c.pending = append(c.pending, chs...)
}

// PendingChanges reports how many updates are staged.
func (c *Ctx) PendingChanges() int { return len(c.pending) }

// UnknownFuncError reports configuration changes whose exact (wildcard-free)
// patterns name no registered function. Such a change could never alter the
// activation table; silently absorbing it hides controller and tool bugs.
type UnknownFuncError struct {
	Patterns []string // the offending patterns, in batch order
}

func (e *UnknownFuncError) Error() string {
	return fmt.Sprintf("vt: changes name unknown functions: %s",
		strings.Join(e.Patterns, ", "))
}

// ApplyChanges applies configuration updates to the activation table and
// bumps the generation. A batch containing an exact pattern that matches no
// registered function is rejected atomically with *UnknownFuncError: no rule
// in the batch is applied and the generation does not advance. Prefix
// patterns (trailing '*') are exempt — they legitimately match functions
// registered later.
func (c *Ctx) ApplyChanges(chs []Change) error {
	var unknown []string
	for _, ch := range chs {
		if strings.HasSuffix(ch.Pattern, "*") {
			continue
		}
		if _, ok := c.ids[ch.Pattern]; !ok {
			unknown = append(unknown, ch.Pattern)
		}
	}
	if len(unknown) > 0 {
		return &UnknownFuncError{Patterns: unknown}
	}
	if c.cfg == nil {
		c.cfg = &Config{}
	}
	for _, ch := range chs {
		c.cfg.Set(ch.Pattern, ch.Active)
	}
	for id, name := range c.names {
		c.active[id] = c.cfg.Active(name)
	}
	c.gen++
	return nil
}

// ProbeCost is one function's instrumentation cost attribution: how often
// its probes fired, how many events were actually recorded, and the cycles
// the library charged through them.
type ProbeCost struct {
	ID       int32
	Name     string
	Active   bool
	Hits     int64 // Begin/End firings, active or not (each pays the lookup)
	Recorded int64 // events recorded while active
	Cycles   int64 // total library cycles charged through this probe
}

// FloorCycles is the unavoidable part of the probe's cost: every firing
// pays the table lookup whether or not the symbol is active, so this floor
// persists after deactivation.
func (pc ProbeCost) FloorCycles() int64 { return pc.Hits * lookupCycles }

// RemovableCycles is the part of the probe's cost that deactivating it
// reclaims: the timestamp-and-record cycles of events actually collected.
func (pc ProbeCost) RemovableCycles() int64 { return pc.Cycles - pc.Hits*lookupCycles }

// CostSnapshot returns per-probe cost counters in function-id order. An
// adaptive controller diffs consecutive snapshots to attribute perturbation
// per function within a sync epoch.
func (c *Ctx) CostSnapshot() []ProbeCost {
	out := make([]ProbeCost, len(c.names))
	for id, name := range c.names {
		out[id] = ProbeCost{
			ID:       int32(id),
			Name:     name,
			Active:   c.active[id],
			Hits:     c.hits[id],
			Recorded: c.recorded[id],
			Cycles:   c.probeCycles[id],
		}
	}
	return out
}

// Flush moves all buffered events and the function table to the collector;
// called at MPI_Finalize / program end ("the collected data is dumped to a
// trace file at program termination").
func (c *Ctx) Flush() {
	table := make(map[int32]string, len(c.names))
	for id, n := range c.names {
		table[int32(id)] = n
	}
	c.col.AddFuncTable(c.rank, table)
	tids := make([]int32, 0, len(c.buffers)+len(c.units))
	for tid := range c.buffers {
		tids = append(tids, tid)
	}
	for tid := range c.units {
		tids = append(tids, tid)
	}
	// Deterministic flush order.
	for i := 0; i < len(tids); i++ {
		for j := i + 1; j < len(tids); j++ {
			if tids[j] < tids[i] {
				tids[i], tids[j] = tids[j], tids[i]
			}
		}
	}
	for _, tid := range tids {
		if tu, ok := c.units[tid]; ok {
			c.drainUnits(tu)
			delete(c.units, tid)
			continue
		}
		c.col.Append(c.buffers[tid])
		delete(c.buffers, tid)
	}
}
