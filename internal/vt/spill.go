package vt

import (
	"encoding/binary"
	"fmt"
	"os"

	"dynprof/internal/des"
)

// This file adds a streaming spill sink to the Collector, bounding the
// resident memory of very large traces (10k+ rank sweeps). Whenever the
// in-memory arena grows past a threshold, the whole arena — every segment,
// in global insertion order — is appended to an on-disk file of fixed-size
// binary records and the arena is reset. Because the arena is always
// spilled in full, the file is exactly the insertion-ordered prefix of the
// event stream, and the resident events are exactly its suffix; the merged
// time-ordered view is reconstructed on read by the same stable k-way merge
// that serves the in-memory path, over disk and arena segments together.
//
// The sink follows the experiment store's durability discipline: each spill
// batch is flushed and fsynced before Append returns, and records are
// fixed-size so a torn final record (crash mid-spill) is detectable by the
// file length.

// spillRecBytes is the on-disk size of one spilled event record.
const spillRecBytes = 40

// spillSeg is one time-sorted segment of the spill file, in global record
// indices.
type spillSeg struct{ start, end int }

// spillSink streams a Collector's arena to disk.
type spillSink struct {
	f         *os.File
	path      string
	threshold int
	count     int // records on disk
	segs      []spillSeg
	err       error // sticky first I/O failure
	buf       []byte
}

// SpillTo arms the collector's spill sink: once more than thresholdEvents
// events are resident, the arena is streamed to a file at path (created or
// truncated here) and resident memory drops back to zero. Len, Bytes,
// Events and WriteTrace are unaffected by spilling apart from memory cost;
// Release deletes the file. I/O failures after arming are sticky and
// reported by SpillErr — the collector keeps counting but the merged view
// is no longer reconstructable.
func (col *Collector) SpillTo(path string, thresholdEvents int) error {
	if thresholdEvents <= 0 {
		return fmt.Errorf("vt: spill threshold must be positive, got %d", thresholdEvents)
	}
	if col.spill != nil {
		return fmt.Errorf("vt: collector already spilling to %s", col.spill.path)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("vt: spill: %w", err)
	}
	col.spill = &spillSink{f: f, path: path, threshold: thresholdEvents}
	return nil
}

// Spilled reports how many events have been written to the spill file.
func (col *Collector) Spilled() int {
	if col.spill == nil {
		return 0
	}
	return col.spill.count
}

// Resident reports how many events are held in memory (the arena suffix
// not yet spilled).
func (col *Collector) Resident() int { return len(col.store) }

// SpillErr reports the first spill I/O failure, if any.
func (col *Collector) SpillErr() error {
	if col.spill == nil {
		return nil
	}
	return col.spill.err
}

// maybeSpill streams the arena to disk if it has outgrown the threshold.
// Called at the end of every Append.
func (s *spillSink) maybeSpill(col *Collector) {
	if s.err != nil || len(col.store) < s.threshold {
		return
	}
	if cap(s.buf) < spillRecBytes*len(col.store) {
		s.buf = make([]byte, spillRecBytes*len(col.store))
	}
	buf := s.buf[:spillRecBytes*len(col.store)]
	for i := range col.store {
		putSpillRec(buf[i*spillRecBytes:], &col.store[i])
	}
	if _, err := s.f.Write(buf); err != nil {
		s.err = fmt.Errorf("vt: spill: %w", err)
		return
	}
	if err := s.f.Sync(); err != nil {
		s.err = fmt.Errorf("vt: spill: %w", err)
		return
	}
	// The arena's segments become spill-file segments at the same relative
	// positions, shifted past everything already on disk.
	for _, seg := range col.segs {
		s.segs = append(s.segs, spillSeg{start: s.count + seg.start, end: s.count + seg.end})
	}
	s.count += len(col.store)
	col.store = col.store[:0]
	col.segs = col.segs[:0]
	col.merged = nil
	col.mergedN = -1
}

// combined restores the full insertion-ordered store — disk prefix plus
// resident suffix — and the matching segment list, for merge-on-read. On a
// read failure the sticky error is set and only the resident events are
// returned.
func (s *spillSink) combined(col *Collector) ([]Event, []segRange) {
	all := make([]Event, s.count+len(col.store))
	if err := s.readAll(all[:s.count]); err != nil {
		s.err = err
		return col.store, col.segs
	}
	copy(all[s.count:], col.store)
	segs := make([]segRange, 0, len(s.segs)+len(col.segs))
	for _, seg := range s.segs {
		segs = append(segs, segRange{start: seg.start, end: seg.end})
	}
	for _, seg := range col.segs {
		segs = append(segs, segRange{start: s.count + seg.start, end: s.count + seg.end})
	}
	return all, segs
}

// readAll decodes the whole spill file into out (len(out) == count).
func (s *spillSink) readAll(out []Event) error {
	buf := make([]byte, spillRecBytes*len(out))
	if _, err := s.f.ReadAt(buf, 0); err != nil {
		return fmt.Errorf("vt: spill: %w", err)
	}
	for i := range out {
		getSpillRec(buf[i*spillRecBytes:], &out[i])
	}
	return nil
}

// close releases and deletes the spill file.
func (s *spillSink) close() {
	s.f.Close()
	os.Remove(s.path)
}

func putSpillRec(b []byte, e *Event) {
	binary.LittleEndian.PutUint64(b[0:], uint64(e.At))
	binary.LittleEndian.PutUint32(b[8:], uint32(e.Rank))
	binary.LittleEndian.PutUint32(b[12:], uint32(e.TID))
	binary.LittleEndian.PutUint32(b[16:], uint32(e.Kind))
	binary.LittleEndian.PutUint32(b[20:], uint32(e.ID))
	binary.LittleEndian.PutUint64(b[24:], uint64(e.A))
	binary.LittleEndian.PutUint64(b[32:], uint64(e.B))
}

func getSpillRec(b []byte, e *Event) {
	e.At = des.Time(binary.LittleEndian.Uint64(b[0:]))
	e.Rank = int32(binary.LittleEndian.Uint32(b[8:]))
	e.TID = int32(binary.LittleEndian.Uint32(b[12:]))
	e.Kind = Kind(binary.LittleEndian.Uint32(b[16:]))
	e.ID = int32(binary.LittleEndian.Uint32(b[20:]))
	e.A = int64(binary.LittleEndian.Uint64(b[24:]))
	e.B = int64(binary.LittleEndian.Uint64(b[32:]))
}
