package vt

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"dynprof/internal/des"
)

// This file adds a streaming spill sink to the Collector, bounding the
// resident memory of very large traces (10k+ rank sweeps). Whenever the
// in-memory arena grows past a threshold, the whole arena — every segment,
// in global insertion order — is appended to an on-disk file and the arena
// is reset. Because the arena is always spilled in full, the file is
// exactly the insertion-ordered prefix of the event stream, and the
// resident events are exactly its suffix; the merged time-ordered view is
// reconstructed on read by the same stable k-way merge that serves the
// in-memory path, over disk and arena segments together.
//
// Every spill file opens with a 5-byte header, "VTSP" plus a format
// version, so a reader confronted with a file from a different revision
// fails with a typed *FormatError instead of silently misparsing records:
//
//	version 1: fixed 40-byte little-endian records (verbatim collectors)
//	version 2: compact frames `uvarint count, uvarint blockLen, block`
//	           (compact collectors; block format in compact.go)
//
// The sink follows the experiment store's durability discipline: each
// spill batch is flushed and fsynced before Append returns. Version-1
// records are fixed-size, so a torn final record (crash mid-spill) is
// detectable from the payload length; version-2 frames are length-
// prefixed, so truncation is caught by the frame walk.

// spillRecBytes is the on-disk size of one version-1 spilled event record.
const spillRecBytes = 40

// spillMagic opens every spill file, followed by the format version byte.
const spillMagic = "VTSP"

// spillHdrBytes is the header size: magic plus version.
const spillHdrBytes = len(spillMagic) + 1

// spillVerbatimVersion is the fixed-record spill format version.
const spillVerbatimVersion = 1

// spillSeg is one time-sorted segment of the spill file, in global record
// indices.
type spillSeg struct{ start, end int }

// spillSink streams a Collector's arena to disk.
type spillSink struct {
	f         *os.File
	path      string
	threshold int
	version   byte
	count     int // records on disk
	bytes     int // payload bytes on disk, header excluded
	segs      []spillSeg
	err       error // sticky first I/O failure
	buf       []byte
}

// SpillTo arms the collector's spill sink: once more than thresholdEvents
// events are resident, the arena is streamed to a file at path (created or
// truncated here) and resident memory drops back to zero. A verbatim
// collector writes version-1 fixed records; a compact collector writes its
// encoded blocks as version-2 frames, so the on-disk budget shrinks with
// the suppression ratio. Len, Bytes, Events and WriteTrace are unaffected
// by spilling apart from memory cost; Release deletes the file. I/O
// failures after arming are sticky and reported by SpillErr — the
// collector keeps counting but the merged view is no longer
// reconstructable.
func (col *Collector) SpillTo(path string, thresholdEvents int) error {
	if thresholdEvents <= 0 {
		return fmt.Errorf("vt: spill threshold must be positive, got %d", thresholdEvents)
	}
	if col.spill != nil {
		return fmt.Errorf("vt: collector already spilling to %s", col.spill.path)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("vt: spill: %w", err)
	}
	version := byte(spillVerbatimVersion)
	if col.compact {
		version = CompactVersion
	}
	hdr := append([]byte(spillMagic), version)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("vt: spill: %w", err)
	}
	col.spill = &spillSink{f: f, path: path, threshold: thresholdEvents, version: version}
	return nil
}

// Spilled reports how many events have been written to the spill file.
func (col *Collector) Spilled() int {
	if col.spill == nil {
		return 0
	}
	return col.spill.count
}

// Resident reports how many events are held in memory (the arena suffix
// not yet spilled).
func (col *Collector) Resident() int { return col.residentLen() }

// SpillErr reports the first spill I/O failure, if any.
func (col *Collector) SpillErr() error {
	if col.spill == nil {
		return nil
	}
	return col.spill.err
}

// maybeSpill streams the arena to disk if it has outgrown the threshold.
// Called at the end of every Append.
func (s *spillSink) maybeSpill(col *Collector) {
	if s.err != nil || col.residentLen() < s.threshold {
		return
	}
	var payload []byte
	if col.compact {
		// One frame per resident block: the encoded bytes move to disk
		// without being touched.
		buf := s.buf[:0]
		for _, b := range col.blocks {
			buf = binary.AppendUvarint(buf, uint64(b.count))
			buf = binary.AppendUvarint(buf, uint64(b.end-b.off))
			buf = append(buf, col.carena[b.off:b.end]...)
		}
		s.buf, payload = buf, buf
	} else {
		if cap(s.buf) < spillRecBytes*len(col.store) {
			s.buf = make([]byte, spillRecBytes*len(col.store))
		}
		payload = s.buf[:spillRecBytes*len(col.store)]
		for i := range col.store {
			putSpillRec(payload[i*spillRecBytes:], &col.store[i])
		}
	}
	if _, err := s.f.Write(payload); err != nil {
		s.err = fmt.Errorf("vt: spill: %w", err)
		return
	}
	if err := s.f.Sync(); err != nil {
		s.err = fmt.Errorf("vt: spill: %w", err)
		return
	}
	// The arena's segments become spill-file segments at the same relative
	// positions, shifted past everything already on disk.
	for _, seg := range col.segs {
		s.segs = append(s.segs, spillSeg{start: s.count + seg.start, end: s.count + seg.end})
	}
	s.count += col.residentLen()
	s.bytes += len(payload)
	col.store = col.store[:0]
	col.segs = col.segs[:0]
	col.carena = col.carena[:0]
	col.blocks = col.blocks[:0]
	col.count = 0
	col.merged = nil
	col.mergedN = -1
}

// checkHeader validates the spill file's magic and version against what
// this sink wrote, returning a *FormatError on mismatch. It guards every
// read path so a file swapped or truncated underneath the collector — or
// one written by a different format revision — is rejected rather than
// misparsed.
func (s *spillSink) checkHeader() error {
	var hdr [spillHdrBytes]byte
	if _, err := s.f.ReadAt(hdr[:], 0); err != nil {
		return &FormatError{What: "spill file", Version: -1, Detail: "truncated header"}
	}
	if string(hdr[:len(spillMagic)]) != spillMagic {
		return &FormatError{What: "spill file", Version: -1, Detail: "bad magic"}
	}
	if hdr[len(spillMagic)] != s.version {
		return &FormatError{What: "spill file", Version: int(hdr[len(spillMagic)])}
	}
	return nil
}

// combined restores the full insertion-ordered store — disk prefix plus
// resident suffix — and the matching segment list, for merge-on-read. On a
// read failure the sticky error is set and only the resident events are
// returned.
func (s *spillSink) combined(col *Collector) ([]Event, []segRange) {
	all := make([]Event, s.count+len(col.store))
	if err := s.readAll(all[:s.count]); err != nil {
		s.err = err
		return col.store, col.segs
	}
	copy(all[s.count:], col.store)
	segs := make([]segRange, 0, len(s.segs)+len(col.segs))
	for _, seg := range s.segs {
		segs = append(segs, segRange{start: seg.start, end: seg.end})
	}
	for _, seg := range col.segs {
		segs = append(segs, segRange{start: s.count + seg.start, end: s.count + seg.end})
	}
	return all, segs
}

// readAll decodes the whole version-1 spill payload into out
// (len(out) == count).
func (s *spillSink) readAll(out []Event) error {
	if err := s.checkHeader(); err != nil {
		return err
	}
	buf := make([]byte, spillRecBytes*len(out))
	if _, err := s.f.ReadAt(buf, int64(spillHdrBytes)); err != nil {
		return fmt.Errorf("vt: spill: %w", err)
	}
	for i := range out {
		getSpillRec(buf[i*spillRecBytes:], &out[i])
	}
	return nil
}

// decodeAll appends the decoded events of the whole version-2 spill
// payload to dst, walking its length-prefixed frames.
func (s *spillSink) decodeAll(dst []Event) ([]Event, error) {
	if err := s.checkHeader(); err != nil {
		return dst, err
	}
	payload := make([]byte, s.bytes)
	if _, err := s.f.ReadAt(payload, int64(spillHdrBytes)); err != nil {
		return dst, fmt.Errorf("vt: spill: %w", err)
	}
	dec := decoderPool.Get().(*decoder)
	defer decoderPool.Put(dec)
	decoded, p := 0, 0
	for decoded < s.count {
		count, n := binary.Uvarint(payload[p:])
		if n <= 0 {
			return dst, &FormatError{What: "spill file", Version: -1, Detail: "truncated frame header"}
		}
		p += n
		blen, n := binary.Uvarint(payload[p:])
		if n <= 0 || count == 0 || uint64(p+n)+blen > uint64(len(payload)) {
			return dst, &FormatError{What: "spill file", Version: -1, Detail: "bad frame header"}
		}
		p += n
		var err error
		dst, _, _, err = dec.block(payload[p:p+int(blen)], int(count), dst)
		if err != nil {
			return dst, err
		}
		p += int(blen)
		decoded += int(count)
	}
	if p != len(payload) {
		return dst, &FormatError{What: "spill file", Version: -1, Detail: "trailing bytes after final frame"}
	}
	return dst, nil
}

// copyFrames streams the version-2 spill payload — already framed — to w.
func (s *spillSink) copyFrames(w io.Writer) error {
	if err := s.checkHeader(); err != nil {
		return err
	}
	if _, err := io.Copy(w, io.NewSectionReader(s.f, int64(spillHdrBytes), int64(s.bytes))); err != nil {
		return fmt.Errorf("vt: spill: %w", err)
	}
	return nil
}

// close releases and deletes the spill file.
func (s *spillSink) close() {
	s.f.Close()
	os.Remove(s.path)
}

func putSpillRec(b []byte, e *Event) {
	binary.LittleEndian.PutUint64(b[0:], uint64(e.At))
	binary.LittleEndian.PutUint32(b[8:], uint32(e.Rank))
	binary.LittleEndian.PutUint32(b[12:], uint32(e.TID))
	binary.LittleEndian.PutUint32(b[16:], uint32(e.Kind))
	binary.LittleEndian.PutUint32(b[20:], uint32(e.ID))
	binary.LittleEndian.PutUint64(b[24:], uint64(e.A))
	binary.LittleEndian.PutUint64(b[32:], uint64(e.B))
}

func getSpillRec(b []byte, e *Event) {
	e.At = des.Time(binary.LittleEndian.Uint64(b[0:]))
	e.Rank = int32(binary.LittleEndian.Uint32(b[8:]))
	e.TID = int32(binary.LittleEndian.Uint32(b[12:]))
	e.Kind = Kind(binary.LittleEndian.Uint32(b[16:]))
	e.ID = int32(binary.LittleEndian.Uint32(b[20:]))
	e.A = int64(binary.LittleEndian.Uint64(b[24:]))
	e.B = int64(binary.LittleEndian.Uint64(b[32:]))
}
