package vt

import (
	"strings"
	"testing"

	"dynprof/internal/des"
	"dynprof/internal/fault"
	"dynprof/internal/machine"
	"dynprof/internal/mpi"
)

func worldForAttach(t *testing.T, n int) *mpi.World {
	t.Helper()
	s := des.NewScheduler(11)
	place, err := machine.Pack(machine.MustNew("ibm-power3"), n)
	if err != nil {
		t.Fatal(err)
	}
	return mpi.NewWorld(s, place)
}

func overflowCtx(t *testing.T, cap int, policy fault.OverflowPolicy) (*Ctx, *Collector, *fault.Injector) {
	t.Helper()
	col := NewCollector()
	inj := fault.NewInjector(&fault.Plan{TraceBufEvents: cap, Overflow: policy}, des.NewRNG(1))
	c := NewCtx(Options{Rank: 0, Collector: col, BufferEvents: cap, Overflow: policy, Faults: inj, Node: 3})
	c.Initialize(nil)
	return c, col, inj
}

// TestOverflowFlushEarly: a full buffer is drained to the collector,
// charging the thread, and the arriving event starts the next buffer.
func TestOverflowFlushEarly(t *testing.T) {
	c, col, inj := overflowCtx(t, 8, fault.OverflowFlushEarly)
	id := c.FuncDef("f")
	ec := &fakeEC{}
	for i := 0; i < 20; i++ {
		c.Begin(ec, id)
	}
	// Buffers of 8 flushed at events 9 and 17; 4 remain buffered.
	if col.Len() != 16 || c.Overflows() != 2 || c.MidRunFlushes() != 2 {
		t.Fatalf("col=%d overflows=%d flushes=%d, want 16/2/2", col.Len(), c.Overflows(), c.MidRunFlushes())
	}
	base := int64(20) * (lookupCycles + recordCycles)
	if ec.charged != base+16*flushCyclesPerEvent {
		t.Errorf("charged %d, want %d", ec.charged, base+16*flushCyclesPerEvent)
	}
	c.Flush()
	if col.Len() != 20 {
		t.Errorf("total events = %d, want 20 (nothing lost)", col.Len())
	}
	evs := inj.Events()
	if len(evs) != 2 || evs[0].Kind != fault.KindOverflow || evs[0].Node != 3 {
		t.Errorf("fault events = %+v, want 2 overflow events on node 3", evs)
	}
}

// TestOverflowDropOldest: the buffer stays at capacity, keeping the most
// recent events; one fault event notes the loss per thread.
func TestOverflowDropOldest(t *testing.T) {
	c, col, inj := overflowCtx(t, 5, fault.OverflowDropOldest)
	id := c.FuncDef("f")
	ec := &fakeEC{}
	for i := 0; i < 30; i++ {
		ec.now = des.Time(i) * des.Millisecond
		c.Begin(ec, id)
	}
	c.Flush()
	if col.Len() != 5 {
		t.Fatalf("kept %d events, want capacity 5", col.Len())
	}
	evs := col.Events()
	if evs[0].At != 25*des.Millisecond || evs[4].At != 29*des.Millisecond {
		t.Errorf("kept window [%v, %v], want the newest 5 events", evs[0].At, evs[4].At)
	}
	if c.Overflows() != 25 {
		t.Errorf("overflows = %d, want 25", c.Overflows())
	}
	if got := inj.Events(); len(got) != 1 || !strings.Contains(got[0].Detail, "dropping oldest") {
		t.Errorf("fault log = %+v, want a single drop-oldest note", got)
	}
}

// TestOverflowDisableProbe: the offending probe is deactivated — later
// calls pay only the lookup and record nothing — and one fault event
// names the disabled function.
func TestOverflowDisableProbe(t *testing.T) {
	c, col, inj := overflowCtx(t, 4, fault.OverflowDisableProbe)
	f := c.FuncDef("hot")
	g := c.FuncDef("cold")
	ec := &fakeEC{}
	for i := 0; i < 10; i++ {
		c.Begin(ec, f)
	}
	if c.Active(f) {
		t.Fatal("overflowing probe still active")
	}
	if c.Calls(f) != 5 {
		// 4 buffered + the call that tripped the overflow; later calls
		// are gated off by the deactivation table.
		t.Errorf("calls(f) = %d, want 5", c.Calls(f))
	}
	// Another function still fits in the remaining... the buffer is full,
	// so it immediately trips the policy too.
	c.Begin(ec, g)
	if c.Active(g) {
		t.Error("second probe not disabled by full buffer")
	}
	c.Flush()
	if col.Len() != 4 {
		t.Errorf("kept %d events, want the 4 buffered before disabling", col.Len())
	}
	var names []string
	for _, ev := range inj.Events() {
		names = append(names, ev.Detail)
	}
	if len(names) != 2 || !strings.Contains(names[0], "hot") || !strings.Contains(names[1], "cold") {
		t.Errorf("fault log = %v, want one disable note per function", names)
	}
}

// TestAttachBuildsPerRankCtxs: Attach gives every rank its own library
// instance on a shared collector, with buffer options applied.
func TestAttachRanks(t *testing.T) {
	w := worldForAttach(t, 4)
	att := Attach(w, WithConfigText("SYMBOL omp_* OFF"), WithTraceMPI(),
		WithBuffer(64, fault.OverflowDropOldest))
	if att.Size() != 4 {
		t.Fatalf("attachment size = %d", att.Size())
	}
	seen := map[*Ctx]bool{}
	for r := 0; r < 4; r++ {
		c := att.Ctx(r)
		if seen[c] {
			t.Fatalf("rank %d shares a Ctx", r)
		}
		seen[c] = true
		if c.Rank() != r || c.col != att.Collector() {
			t.Errorf("rank %d miswired: rank=%d", r, c.Rank())
		}
		if c.bufCap != 64 || c.overflow != fault.OverflowDropOldest || !c.traceMPI {
			t.Errorf("rank %d options not applied", r)
		}
		c.Initialize(nil)
		if c.Active(c.FuncDef("omp_loop")) {
			t.Errorf("rank %d config text not applied", r)
		}
	}
}

// TestAttachLocalOMP: a local attachment has one instance and OMP hooks.
func TestAttachLocal(t *testing.T) {
	att := AttachLocal(2, WithTraceOMP(), WithCountOnly())
	if att.Size() != 1 {
		t.Fatalf("local attachment size = %d", att.Size())
	}
	c := att.Ctx(0)
	if !c.traceOMP || !c.countOnly || c.node != 2 {
		t.Error("local options not applied")
	}
	if att.OMPHooks().C != c {
		t.Error("OMP hooks bound to the wrong instance")
	}
	defer func() {
		if recover() == nil {
			t.Error("Bind on a local attachment must panic")
		}
	}()
	att.Bind(0, nil)
}
