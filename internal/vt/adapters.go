package vt

import (
	"dynprof/internal/mpi"
	"dynprof/internal/omp"
	"dynprof/internal/proc"
)

// MPIAdapter plugs a library instance into the MPI wrapper interface:
// "the Vampirtrace library collects MPI trace information by using the
// MPI wrapper interface".
type MPIAdapter struct {
	C *Ctx
}

var _ mpi.Hooks = (*MPIAdapter)(nil)

// Enter logs an APIEnter event for the wrapper call.
func (a *MPIAdapter) Enter(m *mpi.Ctx, call string) {
	if !a.C.ready || !a.C.traceMPI {
		return
	}
	t := m.Thread()
	t.Charge(apiLogCycles)
	a.C.record(t, APIEnter, a.C.FuncDef(call), 0, 0)
}

// Exit logs an APIExit event for the wrapper call.
func (a *MPIAdapter) Exit(m *mpi.Ctx, call string) {
	if !a.C.ready || !a.C.traceMPI {
		return
	}
	t := m.Thread()
	t.Charge(apiLogCycles)
	a.C.record(t, APIExit, a.C.FuncDef(call), 0, 0)
}

// MsgSend logs an outgoing message event (peer and byte count).
func (a *MPIAdapter) MsgSend(m *mpi.Ctx, dst, tag, bytes int) {
	if !a.C.ready || !a.C.traceMPI {
		return
	}
	t := m.Thread()
	t.Charge(apiLogCycles)
	a.C.record(t, MsgSend, int32(tag), int64(dst), int64(bytes))
}

// MsgRecv logs a completed receive event.
func (a *MPIAdapter) MsgRecv(m *mpi.Ctx, src, tag, bytes int) {
	if !a.C.ready || !a.C.traceMPI {
		return
	}
	t := m.Thread()
	t.Charge(apiLogCycles)
	a.C.record(t, MsgRecv, int32(tag), int64(src), int64(bytes))
}

// Initialized initialises the library inside MPI_Init, where Vampirtrace
// sets up its own data structures.
func (a *MPIAdapter) Initialized(m *mpi.Ctx) { a.C.Initialize(m.Thread()) }

// Finalizing flushes the rank's buffers inside MPI_Finalize.
func (a *MPIAdapter) Finalizing(m *mpi.Ctx) { a.C.Flush() }

// OMPAdapter plugs a library instance into the Guidetrace hooks: "the
// Guidetrace library implements OpenMP and also logs OpenMP performance
// events with Vampirtrace".
type OMPAdapter struct {
	C *Ctx
}

var _ omp.Hooks = (*OMPAdapter)(nil)

func (a *OMPAdapter) regionID(name string) int32 { return a.C.FuncDef("$omp$" + name) }

// RegionFork logs the region fork on the master thread.
func (a *OMPAdapter) RegionFork(master *proc.Thread, region string) {
	if !a.C.ready || !a.C.traceOMP {
		return
	}
	master.Charge(apiLogCycles)
	a.C.record(master, RegionFork, a.regionID(region), 0, 0)
}

// RegionEnter logs a team member entering the region body.
func (a *OMPAdapter) RegionEnter(t *proc.Thread, region string, id int) {
	if !a.C.ready || !a.C.traceOMP {
		return
	}
	t.Charge(apiLogCycles)
	a.C.record(t, RegionEnter, a.regionID(region), int64(id), 0)
}

// RegionExit logs a team member leaving the region body.
func (a *OMPAdapter) RegionExit(t *proc.Thread, region string, id int) {
	if !a.C.ready || !a.C.traceOMP {
		return
	}
	t.Charge(apiLogCycles)
	a.C.record(t, RegionExit, a.regionID(region), int64(id), 0)
}

// RegionJoin logs the join on the master thread.
func (a *OMPAdapter) RegionJoin(master *proc.Thread, region string) {
	if !a.C.ready || !a.C.traceOMP {
		return
	}
	master.Charge(apiLogCycles)
	a.C.record(master, RegionJoin, a.regionID(region), 0, 0)
}
