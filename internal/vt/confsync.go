package vt

import (
	"fmt"
	"io"

	"dynprof/internal/des"
	"dynprof/internal/image"
	"dynprof/internal/mpi"
)

// Cost model for VT_confsync and runtime statistics generation.
const (
	// confSyncBaseCycles is per-rank processing inside VT_confsync.
	confSyncBaseCycles = 180_000
	// confApplyCyclesPerRule is the per-change cost of rebuilding the
	// deactivation table.
	confApplyCyclesPerRule = 40_000
	// statsEntryBytes is the wire/disk size of one per-function record in
	// the runtime statistics dump.
	statsEntryBytes = 16
	// statsWriteLatency and statsWriteBandwidth price the root's file
	// write of gathered statistics.
	statsWriteLatency   = 6 * des.Millisecond
	statsWriteBandwidth = 30e6 // bytes per second
)

// BreakpointSymbol is the no-op function VT_confsync calls on rank 0,
// "which can be used as a breakpoint within a monitoring tool".
const BreakpointSymbol = "configuration_break"

// FuncStat is one function's runtime statistics entry.
type FuncStat struct {
	Name  string
	Calls int64
}

// ConfSync is VT_confsync: the process-synchronisation API of the
// instrumentation library (Section 5). All ranks must call it
// collectively, at a point where no messages are in flight. Rank 0 hits
// the configuration_break breakpoint (where a monitoring tool may stage
// changes via QueueChanges), then distributes any staged configuration
// changes to every rank, which applies them. With writeStats set, per-
// function statistics are additionally gathered to rank 0 and written to
// statsOut (Experiment 3 of the paper's Section 5).
//
// It returns the number of changes distributed.
func (c *Ctx) ConfSync(m *mpi.Ctx, writeStats bool, statsOut io.Writer) int {
	if !c.ready {
		panic("vt: ConfSync before library initialisation")
	}
	t := m.Thread()
	n := 0
	body := func() {
		t.Work(confSyncBaseCycles)
		if m.Rank() == 0 {
			// The breakpoint is itself an image symbol when the binary
			// was built with dynamic-control support, so a tool can plant
			// a real probe on it; otherwise it reduces to the handler.
			if _, ok := t.Process().Image().Lookup(BreakpointSymbol); ok {
				t.Call(BreakpointSymbol, func() { t.Breakpoint(BreakpointSymbol) })
			} else {
				t.Breakpoint(BreakpointSymbol)
			}
		}
		var chs []Change
		if m.Rank() == 0 {
			chs = c.pending
			c.pending = nil
		}
		wire := m.Bcast(0, 4+len(chs)*changeBytes, chs)
		chs, _ = wire.([]Change)
		if len(chs) > 0 {
			t.Work(int64(len(chs)) * confApplyCyclesPerRule)
			if err := c.ApplyChanges(chs); err != nil {
				// A rejected batch still consumes the epoch: surface the bad
				// changes on the fault stream and advance the generation so
				// every rank stays in sync.
				c.faultEvent(t, "confsync: "+err.Error())
				c.gen++
			}
		} else {
			c.gen++
		}
		n = len(chs)
		if writeStats {
			c.gatherStats(m, statsOut)
		}
		c.record(t, ConfSync, 0, c.gen, int64(n))
		m.Barrier()
	}
	if _, ok := t.Process().Image().Lookup("VT_confsync"); ok {
		t.Call("VT_confsync", body)
	} else {
		body()
	}
	return n
}

// SyncPoint is the execution context LocalSync needs: the ordinary charge
// interface plus work accounting and the breakpoint hook. *proc.Thread
// satisfies it.
type SyncPoint interface {
	image.ExecCtx
	Work(cycles int64)
	Breakpoint(name string)
}

// LocalSync is the single-process (OpenMP) variant of ConfSync: the same
// breakpoint + drain-pending + apply-or-advance epoch protocol, minus the
// MPI distribution. The master thread calls it at a program sync point; a
// monitoring tool stages changes from the breakpoint handler exactly as in
// the MPI case. It returns the number of changes applied.
func (c *Ctx) LocalSync(t SyncPoint) int {
	if !c.ready {
		panic("vt: LocalSync before library initialisation")
	}
	t.Work(confSyncBaseCycles)
	t.Breakpoint(BreakpointSymbol)
	chs := c.pending
	c.pending = nil
	if len(chs) > 0 {
		t.Work(int64(len(chs)) * confApplyCyclesPerRule)
		if err := c.ApplyChanges(chs); err != nil {
			c.faultEvent(t, "confsync: "+err.Error())
			c.gen++
		}
	} else {
		c.gen++
	}
	c.record(t, ConfSync, 0, c.gen, int64(len(chs)))
	return len(chs)
}

// gatherStats collects per-function call counts to rank 0 and writes them.
func (c *Ctx) gatherStats(m *mpi.Ctx, out io.Writer) {
	t := m.Thread()
	snap := c.StatsSnapshot()
	perRank := len(snap)*statsEntryBytes + 16
	vals, isRoot := m.Gather(0, perRank, snap)
	if !isRoot {
		return
	}
	total := 0
	for r, v := range vals {
		// A dead rank's gather slot is nil under degraded collectives.
		stats, ok := v.([]FuncStat)
		if !ok {
			continue
		}
		total += len(stats)*statsEntryBytes + 16
		if out == nil {
			continue
		}
		for _, st := range stats {
			if st.Calls == 0 {
				continue
			}
			fmt.Fprintf(out, "rank %d %s %d\n", r, st.Name, st.Calls)
		}
	}
	t.WorkTime(statsWriteLatency +
		des.Time(float64(total)/statsWriteBandwidth*float64(des.Second)))
}

// StatsSnapshot returns the current per-function statistics.
func (c *Ctx) StatsSnapshot() []FuncStat {
	out := make([]FuncStat, len(c.names))
	for id, name := range c.names {
		out[id] = FuncStat{Name: name, Calls: c.calls[id]}
	}
	return out
}
