package vt_test

import (
	"fmt"

	"dynprof/internal/vt"
)

// A VT configuration file deactivates statically inserted instrumentation:
// at initialisation "the VT configuration file is read and a table of
// symbols that are deactivated is created".
func ExampleParseConfig() {
	cfg := vt.MustParseConfig(`
# deactivate everything, then re-enable the solver
SYMBOL * OFF
SYMBOL smg_Solve ON
SYMBOL smg_VCycle ON
`)
	for _, sym := range []string{"smg_Solve", "smg_VCycle", "smg_IndexAdd"} {
		fmt.Printf("%s active=%v\n", sym, cfg.Active(sym))
	}
	// Output:
	// smg_Solve active=true
	// smg_VCycle active=true
	// smg_IndexAdd active=false
}

// Runtime reconfiguration stages changes that the next VT_confsync
// distributes to every rank.
func ExampleCtx_ApplyChanges() {
	c := vt.NewCtx(vt.Options{Collector: vt.NewCollector()})
	c.Initialize(nil)
	id := c.FuncDef("hot_kernel")
	fmt.Println("before:", c.Active(id))
	c.ApplyChanges([]vt.Change{{Pattern: "hot_*", Active: false}})
	fmt.Println("after:", c.Active(id))
	// Output:
	// before: true
	// after: false
}
