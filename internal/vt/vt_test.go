package vt

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"dynprof/internal/des"
	"dynprof/internal/image"
	"dynprof/internal/machine"
	"dynprof/internal/mpi"
	"dynprof/internal/omp"
	"dynprof/internal/proc"
)

type fakeEC struct {
	tid     int
	now     des.Time
	charged int64
}

func (c *fakeEC) ThreadID() int    { return c.tid }
func (c *fakeEC) Now() des.Time    { return c.now }
func (c *fakeEC) Charge(cyc int64) { c.charged += cyc }

func newTestCtx(cfg *Config) (*Ctx, *Collector) {
	col := NewCollector()
	c := NewCtx(Options{Rank: 0, Config: cfg, Collector: col})
	c.Initialize(nil)
	return c, col
}

func TestConfigParse(t *testing.T) {
	cfg, err := ParseConfig(strings.NewReader(`
# comment
SYMBOL * OFF
SYMBOL smg_* ON
SYMBOL main OFF
`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Rules() != 3 {
		t.Fatalf("rules = %d", cfg.Rules())
	}
	cases := map[string]bool{
		"random":    false, // * OFF
		"smg_relax": true,  // smg_* ON overrides
		"main":      false, // exact OFF
		"smg_":      true,
		"mainline":  false, // only exact "main" matched... actually '*' OFF applies
	}
	for name, want := range cases {
		if got := cfg.Active(name); got != want {
			t.Errorf("Active(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestConfigParseErrors(t *testing.T) {
	for _, bad := range []string{"SYMBOL foo", "NOTSYMBOL a ON", "SYMBOL a MAYBE"} {
		if _, err := ParseConfig(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseConfig(%q) accepted", bad)
		}
	}
}

func TestConfigDefaultsActive(t *testing.T) {
	var cfg *Config
	if !cfg.Active("anything") {
		t.Fatal("nil config must default to active")
	}
	empty := MustParseConfig("")
	if !empty.Active("anything") {
		t.Fatal("empty config must default to active")
	}
}

func TestConfigLaterRulesOverride(t *testing.T) {
	cfg := MustParseConfig("SYMBOL f ON\nSYMBOL f OFF")
	if cfg.Active("f") {
		t.Fatal("later OFF rule did not override")
	}
	cfg.Set("f", true)
	if !cfg.Active("f") {
		t.Fatal("runtime Set did not override")
	}
}

func TestFuncDefAssignsStableIDs(t *testing.T) {
	c, _ := newTestCtx(nil)
	a := c.FuncDef("alpha")
	b := c.FuncDef("beta")
	if a == b {
		t.Fatal("distinct functions share an id")
	}
	if c.FuncDef("alpha") != a {
		t.Fatal("re-registration changed the id")
	}
	if c.FuncName(a) != "alpha" || c.NumFuncs() != 2 {
		t.Fatalf("registry state wrong: %q %d", c.FuncName(a), c.NumFuncs())
	}
}

func TestBeginEndRecordWhenActive(t *testing.T) {
	c, col := newTestCtx(nil)
	id := c.FuncDef("f")
	ec := &fakeEC{tid: 2, now: 5 * des.Millisecond}
	c.Begin(ec, id)
	ec.now = 7 * des.Millisecond
	c.End(ec, id)
	c.Flush()
	evs := col.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].Kind != Enter || evs[0].At != 5*des.Millisecond || evs[0].TID != 2 {
		t.Fatalf("enter event = %+v", evs[0])
	}
	if evs[1].Kind != Exit || evs[1].At != 7*des.Millisecond {
		t.Fatalf("exit event = %+v", evs[1])
	}
	if c.Calls(id) != 1 {
		t.Fatalf("calls = %d", c.Calls(id))
	}
}

func TestDeactivatedSymbolCostsOnlyLookup(t *testing.T) {
	cfg := MustParseConfig("SYMBOL off_* OFF")
	c, col := newTestCtx(cfg)
	offID := c.FuncDef("off_f")
	onID := c.FuncDef("on_f")

	ecOff := &fakeEC{}
	c.Begin(ecOff, offID)
	if ecOff.charged != lookupCycles {
		t.Fatalf("deactivated begin charged %d, want lookup-only %d", ecOff.charged, lookupCycles)
	}
	ecOn := &fakeEC{}
	c.Begin(ecOn, onID)
	if ecOn.charged != lookupCycles+recordCycles {
		t.Fatalf("active begin charged %d", ecOn.charged)
	}
	c.Flush()
	if col.Len() != 1 {
		t.Fatalf("deactivated symbol recorded an event (len=%d)", col.Len())
	}
}

func TestNotReadyRecordsNothing(t *testing.T) {
	col := NewCollector()
	c := NewCtx(Options{Rank: 0, Collector: col})
	id := c.FuncDef("f")
	ec := &fakeEC{}
	c.Begin(ec, id)
	c.End(ec, id)
	if ec.charged != 0 || len(c.buffers) != 0 {
		t.Fatal("library recorded or charged before initialisation")
	}
}

func TestApplyChangesRebuildsTable(t *testing.T) {
	c, _ := newTestCtx(nil)
	id := c.FuncDef("hot")
	if !c.Active(id) {
		t.Fatal("default should be active")
	}
	c.ApplyChanges([]Change{{Pattern: "hot", Active: false}})
	if c.Active(id) {
		t.Fatal("change did not deactivate")
	}
	if c.Generation() != 1 {
		t.Fatalf("generation = %d", c.Generation())
	}
	// New functions registered after the change see the updated config.
	id2 := c.FuncDef("hot") // same
	if id2 != id {
		t.Fatal("id changed")
	}
}

func TestApplyChangesUnknownFunc(t *testing.T) {
	c, _ := newTestCtx(nil)
	id := c.FuncDef("hot")
	// A batch naming an unknown function is rejected atomically: the valid
	// rule in the same batch must not be applied either, and the
	// generation must not advance.
	err := c.ApplyChanges([]Change{
		{Pattern: "hot", Active: false},
		{Pattern: "no_such_func", Active: false},
		{Pattern: "also_missing", Active: true},
	})
	var ue *UnknownFuncError
	if !errors.As(err, &ue) {
		t.Fatalf("ApplyChanges = %v, want *UnknownFuncError", err)
	}
	if len(ue.Patterns) != 2 || ue.Patterns[0] != "no_such_func" || ue.Patterns[1] != "also_missing" {
		t.Fatalf("UnknownFuncError.Patterns = %v", ue.Patterns)
	}
	if !c.Active(id) {
		t.Fatal("rejected batch partially applied")
	}
	if c.Generation() != 0 {
		t.Fatalf("rejected batch advanced generation to %d", c.Generation())
	}
	// Prefix patterns are exempt: they legitimately match functions
	// registered later.
	if err := c.ApplyChanges([]Change{{Pattern: "future_*", Active: false}}); err != nil {
		t.Fatalf("prefix pattern rejected: %v", err)
	}
	if c.Generation() != 1 {
		t.Fatalf("generation = %d after valid prefix change", c.Generation())
	}
}

func TestSnippetsCallLibrary(t *testing.T) {
	c, col := newTestCtx(nil)
	id := c.FuncDef("f")
	b := c.BeginSnippet(id)
	e := c.EndSnippet(id)
	ec := &fakeEC{}
	b(ec)
	e(ec)
	c.Flush()
	if col.Len() != 2 {
		t.Fatalf("snippet events = %d", col.Len())
	}
}

func TestTraceBytesAccounting(t *testing.T) {
	c, _ := newTestCtx(nil)
	id := c.FuncDef("f")
	ec := &fakeEC{}
	for i := 0; i < 10; i++ {
		c.Begin(ec, id)
		c.End(ec, id)
	}
	if c.TraceBytes() != 20*EventBytes {
		t.Fatalf("trace bytes = %d", c.TraceBytes())
	}
}

func TestTraceWriteReadRoundTrip(t *testing.T) {
	c, col := newTestCtx(nil)
	id := c.FuncDef("compute")
	ec := &fakeEC{tid: 1, now: des.Millisecond}
	c.Begin(ec, id)
	ec.now = 2 * des.Millisecond
	c.End(ec, id)
	c.Flush()

	var buf bytes.Buffer
	if err := col.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("round-trip events = %d", back.Len())
	}
	if back.FuncName(0, id) != "compute" {
		t.Fatalf("round-trip func name = %q", back.FuncName(0, id))
	}
	evs := back.Events()
	if evs[0] != col.Events()[0] || evs[1] != col.Events()[1] {
		t.Fatalf("round-trip events differ: %+v vs %+v", evs, col.Events())
	}
}

// Property: any set of events survives a write/read round trip, sorted by
// timestamp.
func TestTraceRoundTripProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		col := NewCollector()
		col.AddFuncTable(0, map[int32]string{0: "f"})
		for _, r := range raw {
			col.Append([]Event{{
				At:   des.Time(r % 1_000_000),
				Rank: int32(r % 7),
				TID:  int32(r % 3),
				Kind: Kind(r % 11),
				ID:   int32(r % 5),
				A:    int64(r % 13),
				B:    int64(r % 17),
			}})
		}
		var buf bytes.Buffer
		if err := col.WriteTrace(&buf); err != nil {
			return false
		}
		back, err := ReadTrace(&buf)
		if err != nil {
			return false
		}
		a, b := col.Events(), back.Events()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"BOGUS 1 2 3",
		"EVT 1 2 3",
		"EVT x 0 0 enter 0 0 0",
		"EVT 1 0 0 notakind 0 0 0",
		"FUNC 1 2",
	} {
		if _, err := ReadTrace(strings.NewReader(bad)); err == nil {
			t.Errorf("ReadTrace(%q) accepted", bad)
		}
	}
}

// --- integration with the MPI and OpenMP runtimes ---

func runMPIWorld(t *testing.T, n int, col *Collector, cfg *Config,
	body func(c *mpi.Ctx, v *Ctx)) []*Ctx {
	t.Helper()
	s := des.NewScheduler(11)
	mach := machine.MustNew("ibm-power3")
	place, err := machine.Pack(mach, n)
	if err != nil {
		t.Fatal(err)
	}
	w := mpi.NewWorld(s, place)
	vts := make([]*Ctx, n)
	for r := 0; r < n; r++ {
		r := r
		vts[r] = NewCtx(Options{Rank: r, Config: cfg, Collector: col, TraceMPI: true})
		img := image.NewBuilder(fmt.Sprintf("app.%d", r)).Build()
		pr := proc.NewProcess(s, mach, fmt.Sprintf("rank%d", r), r, place.NodeOf(r), img)
		pr.Start(func(th *proc.Thread) {
			c := w.Register(r, th, &MPIAdapter{C: vts[r]})
			c.Init()
			body(c, vts[r])
			c.Finalize()
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return vts
}

func TestMPIAdapterLogsTraffic(t *testing.T) {
	col := NewCollector()
	runMPIWorld(t, 2, col, nil, func(c *mpi.Ctx, v *Ctx) {
		if c.Rank() == 0 {
			c.Send(1, 3, 256, nil)
		} else {
			c.Recv(0, 3)
		}
	})
	var sends, recvs, apiEnters int
	for _, e := range col.Events() {
		switch e.Kind {
		case MsgSend:
			sends++
			if e.A != 1 || e.B != 256 {
				t.Errorf("send event = %+v", e)
			}
		case MsgRecv:
			recvs++
		case APIEnter:
			apiEnters++
		}
	}
	if sends != 1 || recvs != 1 {
		t.Fatalf("sends=%d recvs=%d", sends, recvs)
	}
	if apiEnters < 2 { // at least MPI_Send and MPI_Recv
		t.Fatalf("apiEnters = %d", apiEnters)
	}
}

func TestVTInitInsideMPIInit(t *testing.T) {
	col := NewCollector()
	vts := runMPIWorld(t, 2, col, nil, func(c *mpi.Ctx, v *Ctx) {
		if !v.Ready() {
			t.Error("VT not initialised after MPI_Init")
		}
	})
	for _, v := range vts {
		if !v.Ready() {
			t.Fatal("adapter did not initialise the library")
		}
	}
}

func TestConfSyncDistributesChanges(t *testing.T) {
	col := NewCollector()
	vts := runMPIWorld(t, 4, col, nil, func(c *mpi.Ctx, v *Ctx) {
		v.FuncDef("kernel")
		if c.Rank() == 0 {
			v.QueueChanges([]Change{{Pattern: "kernel", Active: false}})
		}
		n := v.ConfSync(c, false, nil)
		if n != 1 {
			t.Errorf("rank %d saw %d changes", c.Rank(), n)
		}
	})
	for r, v := range vts {
		if v.Active(v.FuncDef("kernel")) {
			t.Fatalf("rank %d did not apply the change", r)
		}
		if v.Generation() != 1 {
			t.Fatalf("rank %d generation = %d", r, v.Generation())
		}
	}
}

func TestConfSyncNoChanges(t *testing.T) {
	col := NewCollector()
	vts := runMPIWorld(t, 3, col, nil, func(c *mpi.Ctx, v *Ctx) {
		if n := v.ConfSync(c, false, nil); n != 0 {
			t.Errorf("unexpected changes: %d", n)
		}
	})
	for _, v := range vts {
		if v.Generation() != 1 {
			t.Fatalf("generation = %d", v.Generation())
		}
	}
}

func TestConfSyncStatsGatherToRoot(t *testing.T) {
	col := NewCollector()
	var statsBuf bytes.Buffer
	runMPIWorld(t, 3, col, nil, func(c *mpi.Ctx, v *Ctx) {
		id := v.FuncDef("work")
		ec := c.Thread()
		for i := 0; i <= c.Rank(); i++ {
			v.Begin(ec, id)
			v.End(ec, id)
		}
		v.ConfSync(c, true, &statsBuf)
	})
	out := statsBuf.String()
	for r := 0; r < 3; r++ {
		want := fmt.Sprintf("rank %d work %d", r, r+1)
		if !strings.Contains(out, want) {
			t.Fatalf("stats output missing %q:\n%s", want, out)
		}
	}
}

func TestConfSyncRecordsEvent(t *testing.T) {
	col := NewCollector()
	runMPIWorld(t, 2, col, nil, func(c *mpi.Ctx, v *Ctx) {
		v.ConfSync(c, false, nil)
	})
	count := 0
	for _, e := range col.Events() {
		if e.Kind == ConfSync {
			count++
		}
	}
	if count != 2 {
		t.Fatalf("ConfSync events = %d, want one per rank", count)
	}
}

func TestOMPAdapterLogsRegions(t *testing.T) {
	s := des.NewScheduler(5)
	mach := machine.MustNew("ibm-power3")
	col := NewCollector()
	v := NewCtx(Options{Rank: 0, Collector: col, TraceOMP: true})
	v.Initialize(nil)
	pr := proc.NewProcess(s, mach, "omp", 0, 0, image.NewBuilder("omp").Build())
	pr.Start(func(master *proc.Thread) {
		rt := omp.New(pr, master, 4, &OMPAdapter{C: v})
		rt.Parallel(master, "sweep", func(th *proc.Thread, id int) { th.Work(1000) })
		rt.Shutdown()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	v.Flush()
	var forks, joins, enters int
	for _, e := range col.Events() {
		switch e.Kind {
		case RegionFork:
			forks++
		case RegionJoin:
			joins++
		case RegionEnter:
			enters++
		}
	}
	if forks != 1 || joins != 1 || enters != 4 {
		t.Fatalf("forks=%d joins=%d enters=%d", forks, joins, enters)
	}
	if col.FuncName(0, v.FuncDef("$omp$sweep")) != "$omp$sweep" {
		t.Fatal("region name not in function table")
	}
}
