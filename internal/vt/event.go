// Package vt implements a Vampirtrace-like instrumentation library: a
// per-process function registry (VT_funcdef), per-thread timestamped event
// buffers written by VT_begin/VT_end probes, a configuration table that
// activates or deactivates symbols (read from a VT config file and updated
// at runtime through VT_confsync), MPI and OpenMP event logging adapters,
// and a trace-file writer/reader for postmortem analysis.
package vt

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"

	"dynprof/internal/des"
)

// Kind classifies trace events.
type Kind uint8

// Event kinds.
const (
	// Enter and Exit are subroutine entry/exit events (VT_begin/VT_end).
	Enter Kind = iota
	Exit
	// MsgSend and MsgRecv are MPI point-to-point events; A is the peer
	// rank, B the byte count.
	MsgSend
	MsgRecv
	// APIEnter and APIExit bracket MPI library calls seen through the
	// wrapper interface.
	APIEnter
	APIExit
	// RegionFork, RegionEnter, RegionExit and RegionJoin are OpenMP
	// parallel-region events from the Guidetrace hooks; A is the member
	// id for enter/exit.
	RegionFork
	RegionEnter
	RegionExit
	RegionJoin
	// ConfSync marks a VT_confsync call; A is the configuration
	// generation after the sync.
	ConfSync
)

var kindNames = [...]string{
	Enter: "enter", Exit: "exit",
	MsgSend: "send", MsgRecv: "recv",
	APIEnter: "apienter", APIExit: "apiexit",
	RegionFork: "fork", RegionEnter: "renter", RegionExit: "rexit", RegionJoin: "join",
	ConfSync: "confsync",
}

// String returns the kind's trace mnemonic.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", k)
}

// kindFromString inverts String; ok is false for unknown mnemonics.
func kindFromString(s string) (Kind, bool) {
	for k, n := range kindNames {
		if n == s {
			return Kind(k), true
		}
	}
	return 0, false
}

// EventBytes is the on-disk size of one event record, used for the
// trace-volume accounting that motivates the paper (data gathering "at the
// rate of 2 megabytes per second").
const EventBytes = 24

// Event is one timestamped trace record.
type Event struct {
	At   des.Time
	Rank int32
	TID  int32
	Kind Kind
	ID   int32 // function or region id in the owning rank's table
	A    int64 // kind-specific: peer rank, member id, generation
	B    int64 // kind-specific: byte count
}

// segRange is one contiguous run of the collector's store with
// non-decreasing timestamps. Segments tile the store exactly: every stored
// event belongs to one segment, in insertion order.
type segRange struct{ start, end int }

// Collector accumulates the trace of a whole run: per-rank function tables
// and the merged event stream. All data collected at run time "is passed
// through Vampirtrace and written to a trace file" at termination.
//
// Events are stored in one append-only arena in arrival order, partitioned
// into time-sorted segments (per-thread flush batches arrive already
// non-decreasing, so a whole batch is usually one segment). The merged,
// time-ordered view is produced by a k-way merge over the segments and
// cached until the next Append, so Events/Bytes/dump paths stop re-copying
// and re-sorting the world on every call.
type Collector struct {
	funcs map[int32]map[int32]string // rank -> id -> name
	store []Event                    // arena, insertion order; recycled via Release
	segs  []segRange

	merged  []Event // cached merged view; valid while mergedN == len(store)
	mergedN int

	// spill, when non-nil, streams the arena to disk whenever it exceeds
	// the configured threshold, bounding resident trace memory (see
	// spill.go and SpillTo).
	spill *spillSink

	// Compact mode (see compact.go): events are stored as encoded blocks
	// in carena instead of verbatim in store; segs then hold event
	// positions rather than store indices.
	compact bool
	carena  []byte
	blocks  []blockRef
	count   int      // events resident in compact mode
	lastAt  des.Time // last appended event's time, for the tail-extend check
	enc     *encoder
	decoded []Event // pooled decode scratch backing the merged view
	stats   CompactStats
}

// eventBufPool recycles collector arenas across simulation cells: a
// Runner sweep builds and discards one Collector per cell, and reusing the
// grown backing arrays removes that churn from the hot loop.
var eventBufPool = sync.Pool{New: func() any { return new([]Event) }}

// NewCollector returns an empty trace collector backed by a pooled arena.
func NewCollector() *Collector {
	buf := eventBufPool.Get().(*[]Event)
	return &Collector{
		funcs:   make(map[int32]map[int32]string),
		store:   (*buf)[:0],
		mergedN: -1,
	}
}

// Release returns the collector's arena — and, in compact mode, the byte
// arena, the encoder with its suppression dictionary, and the decode
// scratch — to the shared pools, and deletes any spill file. The caller
// declares that neither the collector nor any slice obtained from Events
// will be used again.
func (col *Collector) Release() {
	if col.store != nil {
		buf := col.store[:0]
		eventBufPool.Put(&buf)
	}
	col.store, col.segs, col.merged = nil, nil, nil
	col.mergedN = -1
	if col.carena != nil {
		b := col.carena[:0]
		byteArenaPool.Put(&b)
		col.carena = nil
	}
	if col.enc != nil {
		encoderPool.Put(col.enc)
		col.enc = nil
	}
	if col.decoded != nil {
		d := col.decoded[:0]
		eventBufPool.Put(&d)
		col.decoded = nil
	}
	col.blocks = nil
	col.count, col.lastAt = 0, 0
	col.compact = false
	col.stats = CompactStats{}
	if col.spill != nil {
		col.spill.close()
		col.spill = nil
	}
}

// AddFuncTable registers rank's id-to-name function table.
func (col *Collector) AddFuncTable(rank int32, names map[int32]string) {
	t, ok := col.funcs[rank]
	if !ok {
		t = make(map[int32]string, len(names))
		col.funcs[rank] = t
	}
	for id, n := range names {
		t[id] = n
	}
}

// Append merges a rank's event buffer into the trace. The batch is copied
// into the arena and carved into non-decreasing-time segments; a batch that
// continues the previous segment's timeline extends it in place.
func (col *Collector) Append(events []Event) {
	if len(events) == 0 {
		return
	}
	if col.compact {
		col.appendCompact(events, nil, 0, 0)
		return
	}
	start := len(col.store)
	col.store = append(col.store, events...)
	for i := start; i < len(col.store); {
		j := i + 1
		for j < len(col.store) && col.store[j].At >= col.store[j-1].At {
			j++
		}
		if n := len(col.segs); n > 0 && i > 0 && col.store[i].At >= col.store[i-1].At {
			col.segs[n-1].end = j
		} else {
			col.segs = append(col.segs, segRange{start: i, end: j})
		}
		i = j
	}
	if col.spill != nil {
		col.spill.maybeSpill(col)
	}
}

// Events returns the merged events sorted by timestamp (stable: ties keep
// rank/tid/insertion order). The view is cached between Appends; callers
// must treat it as read-only.
func (col *Collector) Events() []Event {
	if col.mergedN != col.residentLen() {
		col.rebuildMerged()
	}
	return col.merged
}

// residentLen is the number of events held in memory: arena entries for a
// verbatim collector, encoded-block event counts for a compact one.
func (col *Collector) residentLen() int {
	if col.compact {
		return col.count
	}
	return len(col.store)
}

// rebuildMerged recomputes the cached time-ordered view. Each segment is
// already sorted by (At, insertion index) — times non-decreasing, indices
// strictly increasing — so a k-way merge keyed on (At, cursor index)
// reproduces exactly the stable sort of the insertion-ordered stream. A
// spilling collector first restores the on-disk prefix (see spill.go); the
// merge then runs over disk and arena segments together. A compact
// collector first decodes its blocks (and spilled frames) into the pooled
// scratch — segment boundaries are positions where time decreases, so the
// decoded stream merges exactly like the verbatim one.
func (col *Collector) rebuildMerged() {
	col.mergedN = col.residentLen()
	store, segs := col.store, col.segs
	if col.compact {
		store, segs = col.decodedCombined()
	} else if col.spill != nil && col.spill.count > 0 {
		store, segs = col.spill.combined(col)
	}
	switch len(segs) {
	case 0:
		col.merged = nil
		return
	case 1:
		// Single timeline: the arena itself is the merged view. The full
		// slice expression stops callers from appending into the arena.
		s := segs[0]
		col.merged = store[s.start:s.end:s.end]
		return
	}
	col.merged = mergeSegs(store, segs)
}

// mergeSegs k-way merges time-sorted segments of store, keyed on
// (At, cursor index), producing the stable time order of the insertion-
// ordered stream.
func mergeSegs(store []Event, segs []segRange) []Event {
	cur := make([]int, len(segs))
	heap := make([]int, 0, len(segs))
	less := func(a, b int) bool {
		ea, eb := &store[cur[a]], &store[cur[b]]
		if ea.At != eb.At {
			return ea.At < eb.At
		}
		return cur[a] < cur[b]
	}
	siftDown := func(i int) {
		for {
			c := 2*i + 1
			if c >= len(heap) {
				return
			}
			if c+1 < len(heap) && less(heap[c+1], heap[c]) {
				c++
			}
			if !less(heap[c], heap[i]) {
				return
			}
			heap[i], heap[c] = heap[c], heap[i]
			i = c
		}
	}
	total := 0
	for si, s := range segs {
		cur[si] = s.start
		heap = append(heap, si)
		total += s.end - s.start
	}
	for i := len(heap)/2 - 1; i >= 0; i-- {
		siftDown(i)
	}
	out := make([]Event, 0, total)
	for len(heap) > 0 {
		si := heap[0]
		out = append(out, store[cur[si]])
		cur[si]++
		if cur[si] == segs[si].end {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
		}
		siftDown(0)
	}
	return out
}

// Len reports the number of collected events, spilled ones included.
func (col *Collector) Len() int {
	n := col.residentLen()
	if col.spill != nil {
		n += col.spill.count
	}
	return n
}

// Bytes reports the trace's size: the fixed per-event record size for a
// verbatim collector, the encoded payload volume (resident and spilled)
// for a compact one.
func (col *Collector) Bytes() int {
	if col.compact {
		return col.stats.Bytes
	}
	return col.Len() * EventBytes
}

// FuncName resolves a function id in rank's table.
func (col *Collector) FuncName(rank, id int32) string {
	if n, ok := col.funcs[rank][id]; ok {
		return n
	}
	return fmt.Sprintf("func#%d", id)
}

// Ranks returns the ranks with registered function tables, sorted.
func (col *Collector) Ranks() []int32 {
	rs := make([]int32, 0, len(col.funcs))
	for r := range col.funcs {
		rs = append(rs, r)
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
	return rs
}

// WriteTrace writes the trace in the textual VGV-trace format:
//
//	# vgvtrace 1
//	FUNC <rank> <id> <name>
//	EVT <ns> <rank> <tid> <kind> <id> <a> <b>
func (col *Collector) WriteTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# vgvtrace 1"); err != nil {
		return err
	}
	for _, rank := range col.Ranks() {
		t := col.funcs[rank]
		ids := make([]int32, 0, len(t))
		for id := range t {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			if _, err := fmt.Fprintf(bw, "FUNC %d %d %s\n", rank, id, t[id]); err != nil {
				return err
			}
		}
	}
	for _, e := range col.Events() {
		if _, err := fmt.Fprintf(bw, "EVT %d %d %d %s %d %d %d\n",
			int64(e.At), e.Rank, e.TID, e.Kind, e.ID, e.A, e.B); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a trace produced by WriteTrace.
func ReadTrace(r io.Reader) (*Collector, error) {
	col := NewCollector()
	var evs []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "FUNC":
			if len(fields) < 4 {
				return nil, fmt.Errorf("vt: trace line %d: short FUNC record", line)
			}
			rank, err1 := strconv.Atoi(fields[1])
			id, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("vt: trace line %d: bad FUNC ids", line)
			}
			col.AddFuncTable(int32(rank), map[int32]string{int32(id): strings.Join(fields[3:], " ")})
		case "EVT":
			if len(fields) != 8 {
				return nil, fmt.Errorf("vt: trace line %d: EVT needs 8 fields, has %d", line, len(fields))
			}
			var nums [7]int64
			for i, f := range []string{fields[1], fields[2], fields[3], fields[5], fields[6], fields[7]} {
				v, err := strconv.ParseInt(f, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("vt: trace line %d: %v", line, err)
				}
				nums[i] = v
			}
			kind, ok := kindFromString(fields[4])
			if !ok {
				return nil, fmt.Errorf("vt: trace line %d: unknown kind %q", line, fields[4])
			}
			evs = append(evs, Event{
				At: des.Time(nums[0]), Rank: int32(nums[1]), TID: int32(nums[2]),
				Kind: kind, ID: int32(nums[3]), A: nums[4], B: nums[5],
			})
		default:
			return nil, fmt.Errorf("vt: trace line %d: unknown record %q", line, fields[0])
		}
	}
	col.Append(evs)
	return col, sc.Err()
}
