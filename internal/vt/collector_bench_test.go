package vt

import (
	"fmt"
	"io"
	"testing"

	"dynprof/internal/des"
)

// mkBatch builds one rank's flush batch: times non-decreasing, as produced
// by a real per-thread buffer.
func mkBatch(rank int32, start des.Time, n int) []Event {
	evs := make([]Event, n)
	for i := range evs {
		evs[i] = Event{
			At: start + des.Time(i), Rank: rank, TID: 0,
			Kind: Kind(i % 2), ID: int32(i % 7),
		}
	}
	return evs
}

// BenchmarkCollectorAppend measures merging flush batches into the
// collector (the per-rank hot path at every mid-run flush and at
// termination).
func BenchmarkCollectorAppend(b *testing.B) {
	b.ReportAllocs()
	batch := mkBatch(0, 0, 256)
	b.ResetTimer()
	col := NewCollector()
	for i := 0; i < b.N; i++ {
		if col.Len() > 1<<20 {
			// Bound collector growth so the benchmark measures Append,
			// not unbounded memory pressure.
			b.StopTimer()
			col = NewCollector()
			b.StartTimer()
		}
		col.Append(batch)
	}
}

// BenchmarkCollectorEvents measures the merged-view cost: ranks flush
// per-rank buffers, then Events is called repeatedly (as the analysis,
// trace-writer and render paths all do).
func BenchmarkCollectorEvents(b *testing.B) {
	for _, ranks := range []int{4, 32} {
		b.Run(fmt.Sprintf("%dranks", ranks), func(b *testing.B) {
			b.ReportAllocs()
			col := NewCollector()
			for r := 0; r < ranks; r++ {
				for batch := 0; batch < 4; batch++ {
					col.Append(mkBatch(int32(r), des.Time(batch*512), 512))
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				evs := col.Events()
				if len(evs) != ranks*4*512 {
					b.Fatalf("got %d events", len(evs))
				}
			}
		})
	}
}

// BenchmarkCollectorWriteTrace measures the dump path end to end.
func BenchmarkCollectorWriteTrace(b *testing.B) {
	b.ReportAllocs()
	col := NewCollector()
	for r := 0; r < 8; r++ {
		col.AddFuncTable(int32(r), map[int32]string{0: "main", 1: "solve"})
		col.Append(mkBatch(int32(r), 0, 2048))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := col.WriteTrace(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
