package vt

import (
	"fmt"
	"io"
	"testing"

	"dynprof/internal/des"
)

// mkBatch builds one rank's flush batch: times non-decreasing, as produced
// by a real per-thread buffer.
func mkBatch(rank int32, start des.Time, n int) []Event {
	evs := make([]Event, n)
	for i := range evs {
		evs[i] = Event{
			At: start + des.Time(i), Rank: rank, TID: 0,
			Kind: Kind(i % 2), ID: int32(i % 7),
		}
	}
	return evs
}

// BenchmarkCollectorAppend measures merging flush batches into the
// collector (the per-rank hot path at every mid-run flush and at
// termination).
func BenchmarkCollectorAppend(b *testing.B) {
	b.ReportAllocs()
	batch := mkBatch(0, 0, 256)
	b.ResetTimer()
	col := NewCollector()
	for i := 0; i < b.N; i++ {
		if col.Len() > 1<<20 {
			// Bound collector growth so the benchmark measures Append,
			// not unbounded memory pressure.
			b.StopTimer()
			col = NewCollector()
			b.StartTimer()
		}
		col.Append(batch)
	}
}

// BenchmarkCollectorEvents measures the merged-view cost: ranks flush
// per-rank buffers, then Events is called repeatedly (as the analysis,
// trace-writer and render paths all do).
func BenchmarkCollectorEvents(b *testing.B) {
	for _, ranks := range []int{4, 32} {
		b.Run(fmt.Sprintf("%dranks", ranks), func(b *testing.B) {
			b.ReportAllocs()
			col := NewCollector()
			for r := 0; r < ranks; r++ {
				for batch := 0; batch < 4; batch++ {
					col.Append(mkBatch(int32(r), des.Time(batch*512), 512))
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				evs := col.Events()
				if len(evs) != ranks*4*512 {
					b.Fatalf("got %d events", len(evs))
				}
			}
		})
	}
}

// BenchmarkCollectorWriteTrace measures the dump path end to end.
func BenchmarkCollectorWriteTrace(b *testing.B) {
	b.ReportAllocs()
	col := NewCollector()
	for r := 0; r < 8; r++ {
		col.AddFuncTable(int32(r), map[int32]string{0: "main", 1: "solve"})
		col.Append(mkBatch(int32(r), 0, 2048))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := col.WriteTrace(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// benchLoopBatch is the suppression benchmarks' input: a loop-shaped batch
// (the redundant case compaction targets) of n events.
func benchLoopBatch(n int) []Event {
	return loopBatch(0, 0, 0, (n+3)/4)[:n]
}

// BenchmarkCollectorAppendCompact is BenchmarkCollectorAppend against a
// compact collector: the encode cost paid online per flush batch. The
// bytes/event metric is the suppression ratio on loop-shaped input.
func BenchmarkCollectorAppendCompact(b *testing.B) {
	b.ReportAllocs()
	batch := benchLoopBatch(256)
	b.ResetTimer()
	col := NewCompactCollector()
	for i := 0; i < b.N; i++ {
		if col.Len() > 1<<20 {
			b.StopTimer()
			col.Release()
			col = NewCompactCollector()
			b.StartTimer()
		}
		col.Append(batch)
	}
	b.StopTimer()
	if st := col.CompactStats(); st.EventsIn > 0 {
		b.ReportMetric(float64(st.Bytes)/float64(st.EventsIn), "bytes/event")
	}
}

// BenchmarkCompactEncode measures the raw encoder on loop-shaped input:
// ns/event and bytes/event of one block encode.
func BenchmarkCompactEncode(b *testing.B) {
	b.ReportAllocs()
	evs := benchLoopBatch(4096)
	var enc encoder
	buf, _, _ := enc.encodeBlock(nil, evs)
	b.SetBytes(int64(len(evs)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, _, _ = enc.encodeBlock(buf[:0], evs)
	}
	b.StopTimer()
	b.ReportMetric(float64(len(buf))/float64(len(evs)), "bytes/event")
}

// BenchmarkCompactDecode measures reconstruction of the same block.
func BenchmarkCompactDecode(b *testing.B) {
	b.ReportAllocs()
	evs := benchLoopBatch(4096)
	var enc encoder
	block, _, _ := enc.encodeBlock(nil, evs)
	var dec decoder
	out := make([]Event, 0, len(evs))
	b.SetBytes(int64(len(evs)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		out, _, _, err = dec.block(block, len(evs), out[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCollectorWriteCompactTrace is the compact dump path against
// BenchmarkCollectorWriteTrace's exact workload — the collector host-time
// comparison in BENCH_PR10.json (text formatting vs block copy-out).
func BenchmarkCollectorWriteCompactTrace(b *testing.B) {
	b.ReportAllocs()
	col := NewCompactCollector()
	for r := 0; r < 8; r++ {
		col.AddFuncTable(int32(r), map[int32]string{0: "main", 1: "solve"})
		col.Append(mkBatch(int32(r), 0, 2048))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := col.WriteCompactTrace(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
