package vt

import (
	"testing"
)

func TestMidRunBufferFlush(t *testing.T) {
	col := NewCollector()
	c := NewCtx(Options{Rank: 0, Collector: col, FlushThreshold: 10})
	c.Initialize(nil)
	id := c.FuncDef("f")
	ec := &fakeEC{}
	for i := 0; i < 25; i++ {
		c.Begin(ec, id) // 25 events into one thread's buffer
	}
	// Two full buffers (10 each) must already be at the collector, with
	// the drain cost charged to the thread.
	if col.Len() != 20 {
		t.Fatalf("collector has %d events before termination, want 20", col.Len())
	}
	if c.MidRunFlushes() != 2 {
		t.Fatalf("mid-run flushes = %d", c.MidRunFlushes())
	}
	base := int64(25) * (lookupCycles + recordCycles)
	if ec.charged <= base {
		t.Fatalf("flush cost not charged: %d <= %d", ec.charged, base)
	}
	// Termination flush delivers the remainder.
	c.Flush()
	if col.Len() != 25 {
		t.Fatalf("total events = %d, want 25", col.Len())
	}
}

func TestNoMidRunFlushByDefault(t *testing.T) {
	col := NewCollector()
	c := NewCtx(Options{Rank: 0, Collector: col})
	c.Initialize(nil)
	id := c.FuncDef("f")
	ec := &fakeEC{}
	for i := 0; i < 1000; i++ {
		c.Begin(ec, id)
	}
	if col.Len() != 0 || c.MidRunFlushes() != 0 {
		t.Fatalf("default config flushed mid-run: %d events, %d flushes", col.Len(), c.MidRunFlushes())
	}
}

func TestFlushThresholdWithCountOnly(t *testing.T) {
	// CountOnly drops payloads, so the threshold never trips.
	col := NewCollector()
	c := NewCtx(Options{Rank: 0, Collector: col, FlushThreshold: 4, CountOnly: true})
	c.Initialize(nil)
	id := c.FuncDef("f")
	ec := &fakeEC{}
	for i := 0; i < 100; i++ {
		c.Begin(ec, id)
	}
	if c.MidRunFlushes() != 0 || col.Len() != 0 {
		t.Fatal("count-only context flushed events")
	}
	if c.TraceBytes() != 100*EventBytes {
		t.Fatalf("byte accounting lost: %d", c.TraceBytes())
	}
}
