package vt

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dynprof/internal/des"
	"dynprof/internal/fault"
)

// loopBatch models the redundant trace a loop nest emits: iters repetitions
// of an Enter/Exit body over a handful of functions, with a fixed
// per-iteration time step — the sequence redundancy suppression exists to
// collapse.
func loopBatch(rank, tid int32, start des.Time, iters int) []Event {
	evs := make([]Event, 0, iters*4)
	at := start
	for i := 0; i < iters; i++ {
		for _, step := range []struct {
			k  Kind
			id int32
			d  des.Time
		}{
			{Enter, 1, 5}, {Enter, 2, 10}, {Exit, 2, 90}, {Exit, 1, 15},
		} {
			at += step.d
			evs = append(evs, Event{At: at, Rank: rank, TID: tid, Kind: step.k, ID: step.id})
		}
	}
	return evs
}

func TestCompactRoundTripLoop(t *testing.T) {
	evs := loopBatch(0, 0, 0, 100)
	var enc encoder
	block, recs, reps := enc.encodeBlock(nil, evs)
	if reps == 0 {
		t.Fatal("loop body produced no repeat records")
	}
	if recs >= len(evs)/10 {
		t.Errorf("suppression left %d records for %d events", recs, len(evs))
	}
	if ratio := float64(len(evs)*EventBytes) / float64(len(block)); ratio < 5 {
		t.Errorf("compression ratio %.1fx below the 5x target", ratio)
	}
	var dec decoder
	got, drecs, dreps, err := dec.block(block, len(evs), nil)
	if err != nil {
		t.Fatal(err)
	}
	if drecs != recs || dreps != reps {
		t.Errorf("decode counted %d/%d records, encode %d/%d", drecs, dreps, recs, reps)
	}
	if !reflect.DeepEqual(got, evs) {
		t.Fatal("decoded events diverge from the originals")
	}
}

// TestCompactRoundTripAdversarial exercises every literal-tag feature:
// lane switches, A/B payloads, kind escapes (ConfSync is kind 10; kinds
// >= 15 need the escape), dictionary hits and misses, out-of-range and
// negative ids, and time going backwards between events.
func TestCompactRoundTripAdversarial(t *testing.T) {
	evs := []Event{
		{At: 100, Rank: 0, TID: 0, Kind: Enter, ID: 1},
		{At: 100, Rank: 0, TID: 0, Kind: Exit, ID: 1},
		{At: 90, Rank: 3, TID: 1, Kind: MsgSend, ID: 7, A: 2, B: 4096},
		{At: 95, Rank: 3, TID: 1, Kind: MsgRecv, ID: 7, A: -1, B: 1 << 40},
		{At: 95, Rank: 0, TID: 2, Kind: ConfSync, ID: 0, A: 3},
		{At: 200, Rank: 0, TID: 2, Kind: Kind(20), ID: maxDirectID + 5},
		{At: 201, Rank: 0, TID: 2, Kind: Kind(20), ID: maxDirectID + 5},
		{At: 202, Rank: 0, TID: 2, Kind: Enter, ID: -3},
		{At: 203, Rank: 0, TID: 2, Kind: Enter, ID: 1},
	}
	var enc encoder
	block, _, _ := enc.encodeBlock(nil, evs)
	var dec decoder
	got, _, _, err := dec.block(block, len(evs), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, evs) {
		t.Fatalf("adversarial round trip diverged:\n got %v\nwant %v", got, evs)
	}
}

func TestCompactDecoderRejectsCorruption(t *testing.T) {
	evs := loopBatch(0, 0, 0, 4)
	var enc encoder
	block, _, _ := enc.encodeBlock(nil, evs)
	var dec decoder
	cases := map[string][]byte{
		"truncated":      block[:len(block)-1],
		"trailing bytes": append(append([]byte{}, block...), 0x00),
	}
	for name, bad := range cases {
		var fe *FormatError
		if _, _, _, err := dec.block(bad, len(evs), nil); !errors.As(err, &fe) {
			t.Errorf("%s block: got %v, want *FormatError", name, err)
		}
	}
	// A repeat op whose pattern reaches before the block start.
	bad := []byte{tagRepeat | 4, 2}
	var fe *FormatError
	if _, _, _, err := dec.block(bad, 8, nil); !errors.As(err, &fe) {
		t.Errorf("orphan repeat: got %v, want *FormatError", err)
	}
}

// TestCompactCollectorMatchesVerbatim drives identical interleaved batches
// into a verbatim and a compact collector and requires identical merged
// views, lengths and trace bytes out.
func TestCompactCollectorMatchesVerbatim(t *testing.T) {
	plain := NewCollector()
	defer plain.Release()
	compact := NewCompactCollector()
	defer compact.Release()
	for _, col := range []*Collector{plain, compact} {
		fillBatches(col, 20, 50)
		col.Append(loopBatch(0, 0, 1000, 50))
		col.Append(loopBatch(1, 1, 980, 50))
	}
	if plain.Len() != compact.Len() {
		t.Fatalf("Len diverges: %d vs %d", plain.Len(), compact.Len())
	}
	if !reflect.DeepEqual(plain.Events(), compact.Events()) {
		t.Fatal("merged views diverge between verbatim and compact collectors")
	}
	var pw, cw bytes.Buffer
	if err := plain.WriteTrace(&pw); err != nil {
		t.Fatal(err)
	}
	if err := compact.WriteTrace(&cw); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pw.Bytes(), cw.Bytes()) {
		t.Fatal("textual traces diverge between verbatim and compact collectors")
	}
	st := compact.CompactStats()
	if st.EventsIn != compact.Len() || st.Records == 0 || st.Bytes != compact.Bytes() {
		t.Errorf("inconsistent stats: %+v (len %d, bytes %d)", st, compact.Len(), compact.Bytes())
	}
	if compact.Bytes() >= plain.Bytes() {
		t.Errorf("compact bytes %d not below verbatim %d", compact.Bytes(), plain.Bytes())
	}
}

func TestCompactSpillEquivalence(t *testing.T) {
	dir := t.TempDir()
	plain := NewCollector()
	defer plain.Release()
	spilling := NewCompactCollector()
	defer spilling.Release()
	if err := spilling.SpillTo(filepath.Join(dir, "trace.cspill"), 128); err != nil {
		t.Fatal(err)
	}
	for _, col := range []*Collector{plain, spilling} {
		fillBatches(col, 20, 50)
		col.Append(loopBatch(2, 0, 500, 80))
	}
	if spilling.Spilled() == 0 {
		t.Fatal("no events spilled despite tiny threshold")
	}
	if spilling.Len() != plain.Len() {
		t.Fatalf("Len diverges: %d vs %d", spilling.Len(), plain.Len())
	}
	if err := spilling.SpillErr(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spilling.Events(), plain.Events()) {
		t.Fatal("merged views diverge between compact-spilling and verbatim collectors")
	}
	if spilling.Bytes() >= plain.Bytes() {
		t.Errorf("compact spilling bytes %d not below verbatim %d", spilling.Bytes(), plain.Bytes())
	}
}

// TestSpillRejectsUnknownVersion corrupts the spill header's version byte
// under a live collector and requires the read path to surface a typed
// *FormatError instead of misparsing.
func TestSpillRejectsUnknownVersion(t *testing.T) {
	for _, compact := range []bool{false, true} {
		dir := t.TempDir()
		col := NewCollector()
		if compact {
			col = NewCompactCollector()
		}
		path := filepath.Join(dir, "trace.spill")
		if err := col.SpillTo(path, 64); err != nil {
			t.Fatal(err)
		}
		fillBatches(col, 10, 50)
		if col.Spilled() == 0 {
			t.Fatal("no events spilled")
		}
		f, err := os.OpenFile(path, os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt([]byte{99}, int64(len(spillMagic))); err != nil {
			t.Fatal(err)
		}
		f.Close()
		col.Events()
		var fe *FormatError
		if err := col.SpillErr(); !errors.As(err, &fe) {
			t.Errorf("compact=%v: got %v, want *FormatError", compact, err)
		} else if fe.Version != 99 {
			t.Errorf("compact=%v: reported version %d, want 99", compact, fe.Version)
		}
		col.Release()
	}
}

func TestCompactTraceFileRoundTrip(t *testing.T) {
	for _, src := range []struct {
		name string
		mk   func() *Collector
	}{
		{"verbatim", NewCollector},
		{"compact", NewCompactCollector},
	} {
		t.Run(src.name, func(t *testing.T) {
			col := src.mk()
			defer col.Release()
			fillBatches(col, 20, 50)
			col.Append(loopBatch(0, 0, 2000, 60))
			var want bytes.Buffer
			if err := col.WriteTrace(&want); err != nil {
				t.Fatal(err)
			}
			var file bytes.Buffer
			if err := col.WriteCompactTrace(&file); err != nil {
				t.Fatal(err)
			}
			if file.Len() >= want.Len() {
				t.Errorf("compact file %d bytes not below textual %d", file.Len(), want.Len())
			}
			back, err := ReadTraceAuto(bytes.NewReader(file.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			defer back.Release()
			var got bytes.Buffer
			if err := back.WriteTrace(&got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Bytes(), want.Bytes()) {
				t.Fatal("trace read back from compact file diverges from the source")
			}
		})
	}
}

func TestCompactTraceFileSpilledSource(t *testing.T) {
	dir := t.TempDir()
	col := NewCompactCollector()
	defer col.Release()
	if err := col.SpillTo(filepath.Join(dir, "t.cspill"), 100); err != nil {
		t.Fatal(err)
	}
	fillBatches(col, 20, 50)
	if col.Spilled() == 0 {
		t.Fatal("no events spilled")
	}
	var want bytes.Buffer
	if err := col.WriteTrace(&want); err != nil {
		t.Fatal(err)
	}
	var file bytes.Buffer
	if err := col.WriteCompactTrace(&file); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCompactTrace(bytes.NewReader(file.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer back.Release()
	var got bytes.Buffer
	if err := back.WriteTrace(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("trace read back from a spilled compact source diverges")
	}
}

func TestCompactTraceRejectsUnknownVersion(t *testing.T) {
	col := NewCompactCollector()
	defer col.Release()
	fillBatches(col, 2, 10)
	var file bytes.Buffer
	if err := col.WriteCompactTrace(&file); err != nil {
		t.Fatal(err)
	}
	raw := file.Bytes()
	raw[4] = 99
	var fe *FormatError
	if _, err := ReadCompactTrace(bytes.NewReader(raw)); !errors.As(err, &fe) {
		t.Fatalf("got %v, want *FormatError", err)
	} else if fe.Version != 99 {
		t.Fatalf("reported version %d, want 99", fe.Version)
	}
	if _, err := ReadTraceAuto(bytes.NewReader(raw)); !errors.As(err, &fe) {
		t.Fatalf("ReadTraceAuto: got %v, want *FormatError", err)
	}
}

func TestReadTraceAutoTextual(t *testing.T) {
	col := NewCollector()
	defer col.Release()
	fillBatches(col, 3, 10)
	var text bytes.Buffer
	if err := col.WriteTrace(&text); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTraceAuto(bytes.NewReader(text.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer back.Release()
	if !reflect.DeepEqual(back.Events(), col.Events()) {
		t.Fatal("textual auto-read diverges")
	}
}

// driveLoop fires iters Enter/Exit pairs for two functions through the
// Ctx's probes, advancing simulated time by a fixed step.
func driveLoop(c *Ctx, ec *fakeEC, iters int) {
	f := c.FuncDef("solve")
	g := c.FuncDef("kernel")
	c.Initialize(nil)
	for i := 0; i < iters; i++ {
		for _, id := range []int32{f, g} {
			c.Begin(ec, id)
			ec.now += 10
			c.End(ec, id)
			ec.now += 5
		}
	}
}

func TestByteBudgetFlushEarly(t *testing.T) {
	col := NewCompactCollector()
	defer col.Release()
	c := NewCtx(Options{Collector: col, BufferBytes: 256, Overflow: fault.OverflowFlushEarly})
	ec := &fakeEC{}
	driveLoop(c, ec, 4000)
	c.Flush()
	if c.Overflows() == 0 {
		t.Fatal("no overflows despite tiny byte budget")
	}
	if c.MidRunFlushes() == 0 {
		t.Fatal("flush-early produced no mid-run flushes")
	}
	if got := col.Len(); got != 16000 {
		t.Fatalf("flush-early lost events: %d of 16000", got)
	}
	// The same probes through a verbatim collector must yield the same
	// merged trace: budget pressure changes when data moves, not what is
	// recorded.
	ref := NewCollector()
	defer ref.Release()
	rc := NewCtx(Options{Collector: ref})
	driveLoop(rc, &fakeEC{}, 4000)
	rc.Flush()
	if !reflect.DeepEqual(col.Events(), ref.Events()) {
		t.Fatal("flush-early trace diverges from unbudgeted reference")
	}
}

func TestByteBudgetDropOldest(t *testing.T) {
	col := NewCompactCollector()
	defer col.Release()
	c := NewCtx(Options{Collector: col, BufferBytes: 256, Overflow: fault.OverflowDropOldest})
	ec := &fakeEC{}
	driveLoop(c, ec, 4000)
	c.Flush()
	if c.Overflows() == 0 {
		t.Fatal("no overflows despite tiny byte budget")
	}
	if got := col.Len(); got == 0 || got >= 16000 {
		t.Fatalf("drop-oldest kept %d events, want a non-empty strict subset", got)
	}
	// The retained suffix must still decode exactly.
	evs := col.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatal("retained events not time-ordered")
		}
	}
}

func TestByteBudgetDisableProbe(t *testing.T) {
	col := NewCompactCollector()
	defer col.Release()
	c := NewCtx(Options{Collector: col, BufferBytes: 256, Overflow: fault.OverflowDisableProbe})
	ec := &fakeEC{}
	driveLoop(c, ec, 4000)
	c.Flush()
	if c.Overflows() == 0 {
		t.Fatal("no overflows despite tiny byte budget")
	}
	if c.Active(0) || c.Active(1) {
		t.Fatal("disable-probe left probes active under budget pressure")
	}
}

// TestByteBudgetVerbatimDegrade: a byte budget on a verbatim collector
// must behave as an event cap.
func TestByteBudgetVerbatimDegrade(t *testing.T) {
	col := NewCollector()
	defer col.Release()
	c := NewCtx(Options{Collector: col, BufferBytes: 10 * EventBytes, Overflow: fault.OverflowDropOldest})
	ec := &fakeEC{}
	driveLoop(c, ec, 100)
	c.Flush()
	if got := col.Len(); got != 10 {
		t.Fatalf("verbatim degrade kept %d events, want 10", got)
	}
}

// TestCompactReleaseRecycles verifies the suppression state actually
// returns to the pools: a release/new cycle at steady state must not grow
// the heap per iteration.
func TestCompactReleaseRecycles(t *testing.T) {
	evs := loopBatch(0, 0, 0, 200)
	grow := testing.AllocsPerRun(50, func() {
		col := NewCompactCollector()
		col.Append(evs)
		_ = col.Events()
		col.Release()
	})
	// A handful of fixed-size allocations per cycle (Collector struct,
	// maps, blockRef headers) is fine; per-event growth is not.
	if grow > 40 {
		t.Errorf("release/new cycle allocates %.0f objects; pools not recycling", grow)
	}
}
