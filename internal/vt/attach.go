package vt

import (
	"dynprof/internal/fault"
	"dynprof/internal/mpi"
	"dynprof/internal/proc"
)

// AttachOption configures an Attach or AttachLocal call.
type AttachOption func(*attachCfg)

type attachCfg struct {
	cfg       *Config
	col       *Collector
	compact   bool
	countOnly bool
	traceMPI  bool
	traceOMP  bool
	bufEvents int
	bufBytes  int
	overflow  fault.OverflowPolicy
	inj       *fault.Injector
}

// WithConfig uses a parsed VT configuration file for every rank.
func WithConfig(cfg *Config) AttachOption {
	return func(a *attachCfg) { a.cfg = cfg }
}

// WithConfigText parses text as a VT configuration file, panicking on a
// syntax error (experiment definitions want a one-liner).
func WithConfigText(text string) AttachOption {
	cfg := MustParseConfig(text)
	return func(a *attachCfg) { a.cfg = cfg }
}

// WithCollector directs flushed events to col instead of a fresh one.
func WithCollector(col *Collector) AttachOption {
	return func(a *attachCfg) { a.col = col }
}

// WithCompact stores the trace with online redundancy suppression (see
// compact.go): when no collector is supplied via WithCollector, the
// attachment creates one with NewCompactCollector. It has no effect on a
// supplied collector — pass one built by NewCompactCollector instead.
func WithCompact() AttachOption {
	return func(a *attachCfg) { a.compact = true }
}

// WithByteBudget caps every thread's trace buffer at n encoded bytes,
// resolving overflows with the given policy. With a compact collector the
// budget is charged against compressed units (ctx.go), so suppression
// stretches it over more events; with a verbatim collector it degrades to
// an event cap of n/EventBytes.
func WithByteBudget(n int, policy fault.OverflowPolicy) AttachOption {
	return func(a *attachCfg) { a.bufBytes, a.overflow = n, policy }
}

// WithCountOnly keeps cost and statistics accounting but drops event
// payloads (for large sweeps where the trace itself is not inspected).
func WithCountOnly() AttachOption {
	return func(a *attachCfg) { a.countOnly = true }
}

// WithTraceMPI enables MPI wrapper event logging.
func WithTraceMPI() AttachOption {
	return func(a *attachCfg) { a.traceMPI = true }
}

// WithTraceOMP enables Guidetrace parallel-region event logging.
func WithTraceOMP() AttachOption {
	return func(a *attachCfg) { a.traceOMP = true }
}

// WithBuffer caps every thread's trace buffer at n events, resolving
// overflows with the given policy (the fault model's data-pressure knob).
func WithBuffer(n int, policy fault.OverflowPolicy) AttachOption {
	return func(a *attachCfg) { a.bufEvents, a.overflow = n, policy }
}

// WithFaults routes overflow fault events to inj.
func WithFaults(inj *fault.Injector) AttachOption {
	return func(a *attachCfg) { a.inj = inj }
}

// Attachment is the instrumentation library attached to a job: one Ctx
// per MPI rank (or a single Ctx for a local OpenMP process), all feeding
// one collector.
type Attachment struct {
	world *mpi.World // nil for AttachLocal
	col   *Collector
	ctxs  []*Ctx
}

// Attach builds a library instance for every rank of world, all wired to
// one collector. It replaces hand-rolled per-rank NewCtx loops: the Ctx
// for rank r exists immediately (Ctx(r)), and Bind registers the rank's
// main thread with the world through the MPI adapter.
func Attach(world *mpi.World, opts ...AttachOption) *Attachment {
	a := build(opts)
	att := &Attachment{world: world, col: a.col}
	place := world.Placement()
	for r := 0; r < world.Size(); r++ {
		att.ctxs = append(att.ctxs, NewCtx(Options{
			Rank:         r,
			Config:       a.cfg,
			Collector:    a.col,
			TraceMPI:     a.traceMPI,
			CountOnly:    a.countOnly,
			BufferEvents: a.bufEvents,
			BufferBytes:  a.bufBytes,
			Overflow:     a.overflow,
			Faults:       a.inj,
			Node:         place.NodeOf(r),
		}))
	}
	return att
}

// AttachLocal builds a single library instance for a non-MPI (OpenMP)
// process running on the given node.
func AttachLocal(node int, opts ...AttachOption) *Attachment {
	a := build(opts)
	return &Attachment{col: a.col, ctxs: []*Ctx{NewCtx(Options{
		Rank:         0,
		Config:       a.cfg,
		Collector:    a.col,
		TraceOMP:     a.traceOMP,
		CountOnly:    a.countOnly,
		BufferEvents: a.bufEvents,
		BufferBytes:  a.bufBytes,
		Overflow:     a.overflow,
		Faults:       a.inj,
		Node:         node,
	})}}
}

func build(opts []AttachOption) *attachCfg {
	a := &attachCfg{}
	for _, o := range opts {
		o(a)
	}
	if a.col == nil {
		if a.compact {
			a.col = NewCompactCollector()
		} else {
			a.col = NewCollector()
		}
	}
	return a
}

// Ctx returns rank r's library instance (index 0 for AttachLocal).
func (att *Attachment) Ctx(r int) *Ctx { return att.ctxs[r] }

// Size reports the number of attached ranks.
func (att *Attachment) Size() int { return len(att.ctxs) }

// Collector returns the attachment's shared trace collector.
func (att *Attachment) Collector() *Collector { return att.col }

// Bind registers rank r's main thread with the MPI world, interposing
// the rank's library instance via the wrapper-interface adapter, and
// returns the rank's MPI context. Only valid after Attach.
func (att *Attachment) Bind(r int, t *proc.Thread) *mpi.Ctx {
	if att.world == nil {
		panic("vt: Bind on a local (non-MPI) attachment")
	}
	return att.world.Register(r, t, &MPIAdapter{C: att.ctxs[r]})
}

// OMPHooks returns the Guidetrace hook adapter for a local attachment's
// single library instance.
func (att *Attachment) OMPHooks() *OMPAdapter {
	return &OMPAdapter{C: att.ctxs[0]}
}
