package vt

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Config is a parsed VT configuration file: an ordered list of symbol
// activation rules. Later rules override earlier ones; patterns are either
// exact names or a prefix followed by "*".
//
// Syntax (one directive per line, '#' comments):
//
//	SYMBOL <pattern> ON|OFF
type Config struct {
	rules []rule
}

type rule struct {
	pattern string
	active  bool
}

// ParseConfig reads a VT configuration file.
func ParseConfig(r io.Reader) (*Config, error) {
	cfg := &Config{}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 || !strings.EqualFold(fields[0], "SYMBOL") {
			return nil, fmt.Errorf("vt: config line %d: want \"SYMBOL <pattern> ON|OFF\", got %q", line, text)
		}
		var active bool
		switch strings.ToUpper(fields[2]) {
		case "ON":
			active = true
		case "OFF":
			active = false
		default:
			return nil, fmt.Errorf("vt: config line %d: state %q is not ON or OFF", line, fields[2])
		}
		cfg.rules = append(cfg.rules, rule{pattern: fields[1], active: active})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// MustParseConfig parses a config from a string, panicking on error; a
// convenience for tests and experiment definitions.
func MustParseConfig(text string) *Config {
	cfg, err := ParseConfig(strings.NewReader(text))
	if err != nil {
		panic(err)
	}
	return cfg
}

// Set appends a rule, as a runtime reconfiguration would.
func (cfg *Config) Set(pattern string, active bool) {
	cfg.rules = append(cfg.rules, rule{pattern: pattern, active: active})
}

// Active reports whether the symbol is active under the configuration.
// Symbols with no matching rule default to active (instrumentation that
// was inserted is live unless deactivated).
func (cfg *Config) Active(name string) bool {
	active := true
	if cfg == nil {
		return active
	}
	for _, r := range cfg.rules {
		if matchPattern(r.pattern, name) {
			active = r.active
		}
	}
	return active
}

// Rules reports the number of rules, for tests.
func (cfg *Config) Rules() int { return len(cfg.rules) }

// Clone returns an independent copy of the configuration.
func (cfg *Config) Clone() *Config {
	return &Config{rules: append([]rule(nil), cfg.rules...)}
}

func matchPattern(pattern, name string) bool {
	if strings.HasSuffix(pattern, "*") {
		return strings.HasPrefix(name, pattern[:len(pattern)-1])
	}
	return pattern == name
}

// Change is one runtime configuration update distributed by ConfSync.
type Change struct {
	Pattern string
	Active  bool
}

// changeBytes is the wire size of one Change in the ConfSync broadcast.
const changeBytes = 40
