package vt

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dynprof/internal/des"
)

// fillBatches appends n interleaved per-thread batches to col, modelling
// mid-run flushes from several ranks: each batch is time-sorted internally
// but batches overlap in time, forcing real merge work.
func fillBatches(col *Collector, batches, perBatch int) {
	col.AddFuncTable(0, map[int32]string{1: "main", 2: "solve"})
	for b := 0; b < batches; b++ {
		evs := make([]Event, perBatch)
		for i := range evs {
			evs[i] = Event{
				At:   des.Time(b + i*3),
				Rank: int32(b % 4), TID: int32(b % 2),
				Kind: Enter, ID: 1 + int32(i%2), A: int64(b), B: int64(i),
			}
		}
		col.Append(evs)
	}
}

func TestSpillEquivalence(t *testing.T) {
	dir := t.TempDir()

	plain := NewCollector()
	defer plain.Release()
	fillBatches(plain, 20, 50)

	spilling := NewCollector()
	defer spilling.Release()
	if err := spilling.SpillTo(filepath.Join(dir, "trace.spill"), 128); err != nil {
		t.Fatal(err)
	}
	fillBatches(spilling, 20, 50)

	if spilling.Spilled() == 0 {
		t.Fatal("no events spilled despite tiny threshold")
	}
	if spilling.Resident() >= plain.Len() {
		t.Errorf("resident %d not bounded (total %d)", spilling.Resident(), plain.Len())
	}
	if spilling.Len() != plain.Len() || spilling.Bytes() != plain.Bytes() {
		t.Errorf("Len/Bytes diverge: %d/%d vs %d/%d",
			spilling.Len(), spilling.Bytes(), plain.Len(), plain.Bytes())
	}
	if err := spilling.SpillErr(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spilling.Events(), plain.Events()) {
		t.Error("merged views diverge between spilled and resident collectors")
	}

	var a, b bytes.Buffer
	if err := plain.WriteTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := spilling.WriteTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("WriteTrace output diverges between spilled and resident collectors")
	}
}

func TestSpillBoundsArena(t *testing.T) {
	dir := t.TempDir()
	col := NewCollector()
	defer col.Release()
	const threshold = 256
	if err := col.SpillTo(filepath.Join(dir, "trace.spill"), threshold); err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 100; b++ {
		evs := make([]Event, 100)
		for i := range evs {
			evs[i] = Event{At: des.Time(b*100 + i)}
		}
		col.Append(evs)
		// Immediately after any Append the arena can exceed the threshold
		// by at most one batch before the spill empties it.
		if col.Resident() >= threshold {
			t.Fatalf("batch %d: resident %d >= threshold %d after Append", b, col.Resident(), threshold)
		}
	}
	if col.Spilled()+col.Resident() != col.Len() || col.Len() != 100*100 {
		t.Errorf("accounting wrong: spilled %d + resident %d != len %d",
			col.Spilled(), col.Resident(), col.Len())
	}
}

func TestSpillAppendAfterReadKeepsOrder(t *testing.T) {
	dir := t.TempDir()
	col := NewCollector()
	defer col.Release()
	if err := col.SpillTo(filepath.Join(dir, "trace.spill"), 4); err != nil {
		t.Fatal(err)
	}
	col.Append([]Event{{At: 10}, {At: 20}, {At: 30}, {At: 40}}) // spills
	if got := col.Events(); len(got) != 4 {
		t.Fatalf("mid-run view: %d events", len(got))
	}
	col.Append([]Event{{At: 5}, {At: 35}}) // resident, interleaves with disk
	got := col.Events()
	want := []des.Time{5, 10, 20, 30, 35, 40}
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.At != want[i] {
			t.Errorf("event %d at %v, want %v", i, e.At, want[i])
		}
	}
}

func TestSpillReleaseDeletesFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.spill")
	col := NewCollector()
	if err := col.SpillTo(path, 2); err != nil {
		t.Fatal(err)
	}
	col.Append([]Event{{At: 1}, {At: 2}, {At: 3}})
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("spill file missing while live: %v", err)
	}
	col.Release()
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("spill file survives Release: %v", err)
	}
}

func TestSpillToValidates(t *testing.T) {
	col := NewCollector()
	defer col.Release()
	if err := col.SpillTo(filepath.Join(t.TempDir(), "s"), 0); err == nil {
		t.Error("zero threshold must be rejected")
	}
	path := filepath.Join(t.TempDir(), "s")
	if err := col.SpillTo(path, 10); err != nil {
		t.Fatal(err)
	}
	if err := col.SpillTo(path, 10); err == nil {
		t.Error("double SpillTo must be rejected")
	}
	fresh := NewCollector()
	defer fresh.Release()
	if err := fresh.SpillTo(filepath.Join(t.TempDir(), "no/such/dir/s"), 10); err == nil {
		t.Error("unwritable path must surface an error")
	}
}

func TestSpillRecordRoundTrip(t *testing.T) {
	in := Event{At: -5, Rank: 3, TID: 1, Kind: MsgRecv, ID: -7, A: 1 << 40, B: -9}
	var b [spillRecBytes]byte
	putSpillRec(b[:], &in)
	var out Event
	getSpillRec(b[:], &out)
	if in != out {
		t.Errorf("round trip: %+v != %+v", out, in)
	}
}
